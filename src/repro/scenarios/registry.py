"""The scenario registry: names → declarative specs.

Every experiment surface resolves here — the CLI subcommands are aliases
for registry entries, the benchmark scripts run registry entries through
the shared harness, and new workloads are added by registering a spec
(plus, for a genuinely new *kind*, an executor).

``register`` is public: downstream code (tests, notebooks, future
workload PRs) can add scenarios at import time.
"""

from __future__ import annotations

from typing import Iterator

from ..analysis.program_atlas import DEFAULT_ATLAS_GRID
from .spec import DelayPolicy, ScenarioError, ScenarioSpec

__all__ = ["register", "get_scenario", "scenario_names", "all_scenarios"]

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry; rejects silent name collisions."""
    if spec.name in _REGISTRY and not replace:
        raise ScenarioError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def all_scenarios() -> Iterator[ScenarioSpec]:
    for name in scenario_names():
        yield _REGISTRY[name]


# ----------------------------------------------------------------------
# Built-in library: the paper's experiment tables as data.
# ----------------------------------------------------------------------

register(ScenarioSpec(
    name="thm31-sweep",
    kind="thm31_curve",
    description="E1: Thm 3.1 defeating-line size vs memory bits "
                "(counting-walker family), adversary re-certified on the "
                "selected backend",
    agent="counting",
    params={"ks": [1, 2, 3, 4]},
))

register(ScenarioSpec(
    name="thm31-random",
    kind="thm31_random",
    description="E1b: Thm 3.1 adversary vs random line automata",
    params={"states": [2, 4, 8, 16]},
))

register(ScenarioSpec(
    name="thm42-sweep",
    kind="thm42_structured",
    description="E5: Thm 4.2 simultaneous-start adversary vs the "
                "structured victims (alternator, pausing walkers)",
    params={"max_pause": 3},
))

register(ScenarioSpec(
    name="thm42-random",
    kind="thm42_random",
    description="E5b: Thm 4.2 defeating sizes over a random-agent pool",
    seed=11,
    params={"states": [2, 3, 4, 5]},
))

register(ScenarioSpec(
    name="thm43",
    kind="thm43_instances",
    description="E6: Thm 4.3 pigeonhole adversary (max degree 3) for "
                "growing leaf counts",
    seed=41,
    params={"states": 3, "i_leaves": [4, 5, 6]},
))

register(ScenarioSpec(
    name="thm43-collisions",
    kind="thm43_collisions",
    description="E6b: side-tree collision rate vs agent memory",
    seed=5,
    params={"states": [2, 4, 8], "trials": 6, "i": 4},
))

register(ScenarioSpec(
    name="delays-line",
    kind="delay_sweep",
    description="All-delays verdicts for the alternator on a 2-edge-"
                "colored line (the batch-solver showcase)",
    tree="colored:9",
    agent="alternator",
    pairs=((0, 5),),
    delays=DelayPolicy.sweep(16),
))

# --- fault-model scenarios: the robustness layer as registry workloads ---
# Both inject a FaultPlan through the sweep executors; the verdict rows
# (including crash attribution and the certified-never-crash class) are
# part of the reference/compiled parity contract and golden-pinned.

register(ScenarioSpec(
    name="rendezvous-relabel-line",
    kind="delay_sweep",
    description="Alternator delay sweep on a colored line under "
                "adversarial port relabelings (rounds 3 and 6) — the "
                "fault-model relabeling showcase",
    tree="colored:9",
    agent="alternator",
    pairs=((0, 5),),
    delays=DelayPolicy.sweep(8),
    params={"faults": {"relabels": [[3, 1], [6, 2]]}},
))

register(ScenarioSpec(
    name="gathering-crash-k3",
    kind="gathering_sweep",
    description="3-agent gathering sweep with a crash-stop fault (agent "
                "2 at round 6) and a transient pause (agent 0, rounds "
                "2-3): certified-never-crash attribution showcase",
    agent="counting:2",
    params={
        "trees": ["line:9", "line:12"],
        "start_sets": [[0, 1, 3], [0, 2, 4]],
        "delay_vectors": [[0, 0, 0], [0, 1, 2], [1, 0, 2], [2, 0, 1]],
        "faults": {"crashes": [[2, 6]], "pauses": [[0, 2, 2]]},
    },
))

register(ScenarioSpec(
    name="baseline-delays",
    kind="baseline_delays",
    description="E7b: the arbitrary-delay baseline across three orders "
                "of magnitude of θ",
    tree="colored:16",
    agent="baseline",
    pairs=((1, 10),),
    delays=DelayPolicy.fixed(0, 1, 7, 31, 127, 511),
))

register(ScenarioSpec(
    name="success-families",
    kind="success_families",
    description="E2: 100% rendezvous over feasible pairs across the "
                "paper's tree families (Thm 4.1 agent)",
    seed=17,
    params={
        "pairs_per_tree": 3,
        "families": {
            "lines": ["line:7", "line:12", "line:21"],
            "binary": ["binary:2", "binary:3"],
            "binomial": ["binomial:3", "binomial:4"],
            "random": ["random:20", "random:20", "random:20"],
            "subdivided": ["subdivided:3", "subdivided:6"],
        },
    },
))

register(ScenarioSpec(
    name="memory-vs-n",
    kind="memory_vs_n",
    description="E3a: declared bits vs n at fixed ℓ = 4 (flat curve)",
    seed=7,
    params={"subdivisions": [0, 1, 3, 7, 15, 31]},
))

register(ScenarioSpec(
    name="memory-vs-leaves",
    kind="memory_vs_leaves",
    description="E3b: declared bits vs ℓ at roughly fixed n (log curve)",
    seed=3,
    params={"leaf_counts": [4, 8, 16, 32], "total_nodes": 120},
))

register(ScenarioSpec(
    name="prime-rounds",
    kind="prime_rounds",
    description="E4: Lemma 4.1 meeting rounds on growing odd paths",
    agent="prime",
    params={"lengths": [5, 9, 17, 33, 65]},
))

register(ScenarioSpec(
    name="prime-memory",
    kind="prime_memory",
    description="E4b: worst-case prime on near-mirror hard instances",
    agent="prime",
    params={"instances": [[20, 0, 15], [32, 0, 19], [92, 0, 31], [122, 1, 60]]},
))

register(ScenarioSpec(
    name="gap-table",
    kind="gap_table",
    description="E7: the headline exponential memory gap",
    params={"subdivisions": [0, 1, 3, 7, 15, 31]},
))

register(ScenarioSpec(
    name="tradeoff-reps",
    kind="tradeoff_reps",
    description="Time/memory trade-off: P-repetition factor sweep on the "
                "stress family",
    seed=9,
    params={"factors": [1, 2, 5, 8], "sizes": [9, 13, 17], "pairs_per_tree": 3},
))

register(ScenarioSpec(
    name="ablation-reps",
    kind="ablation_reps",
    description="Ablation of the paper's 5ℓ repetition constant",
    seed=9,
    params={"factors": [1, 2, 5, 8], "sizes": [9, 13]},
))

register(ScenarioSpec(
    name="minimization",
    kind="minimization",
    description="Honest-bits check: victim families are near minimal",
))

register(ScenarioSpec(
    name="atlas-programs",
    kind="program_atlas",
    description="Program memory atlas: library register programs lowered, "
                "minimized over the lowering alphabet, circuit-profiled "
                "(γ/tails), and paired with the Ω(log log n)/Ω(log ℓ) "
                "floors and Thm 3.1 defeating sizes",
    params={
        # the analysis layer's DEFAULT_ATLAS_GRID is the single source of
        # truth: program spec -> tree grid; route-A programs repeat the
        # {1,2} alphabet across lines on purpose (the lowering cache
        # collapses the repeats), route-B programs use trees whose solo
        # traces lasso in milliseconds.
        "programs": {
            name: list(trees) for name, trees in DEFAULT_ATLAS_GRID.items()
        },
    },
))

register(ScenarioSpec(
    name="explo-cost",
    kind="explo_cost",
    description="E8 / Fact 2.1: Explo's outputs and 2(n-1) round cost",
    seed=3,
    params={"sizes": [10, 20, 40, 80, 160]},
))

register(ScenarioSpec(
    name="verify-small",
    kind="exhaustive_verify",
    description="Exhaustive Thm 4.1 / Fact 1.1 verification at small n",
    params={"max_n": 6, "labelings": 1},
))

register(ScenarioSpec(
    name="atlas",
    kind="atlas",
    description="Feasibility atlas over all non-isomorphic n-node trees",
    params={"n": 7},
))

register(ScenarioSpec(
    name="gathering-spider",
    kind="gathering",
    description="k-agent gathering on a spider (central-node regime)",
    tree="spider:2,3,4",
    params={"starts": [1, 4, 8]},
))

# --- gathering sweeps: §1.3's k-agent extension as a gridded workload ---
# Each entry grids tree family × start sets × per-agent delay vectors and
# is tuned so the default grid exercises both verdict classes (met and
# certified-never) with every choice decided — the exact joint-
# configuration solver on compiled/auto, certified runs on reference.

register(ScenarioSpec(
    name="gathering-line-k3",
    kind="gathering_sweep",
    description="3-agent gathering sweep on lines (counting walkers; "
                "mixed met / certified-never grid)",
    agent="counting:2",
    params={
        "trees": ["line:9", "line:12"],
        "start_sets": [[0, 1, 3], [0, 2, 4], [0, 3, 4]],
        "delay_vectors": [[0, 0, 0], [0, 1, 2], [1, 0, 2], [2, 0, 1], [0, 0, 2]],
    },
))

register(ScenarioSpec(
    name="gathering-line-k4",
    kind="gathering_sweep",
    description="4-agent gathering sweep on a line (counting walkers; "
                "only asymmetric delay vectors gather)",
    agent="counting:2",
    params={
        "trees": ["line:9"],
        "start_sets": [[0, 1, 2, 3], [0, 2, 3, 4]],
        "delay_vectors": [[0, 0, 0, 0], [1, 0, 1, 2], [0, 0, 1, 2], [2, 2, 1, 0]],
    },
))

register(ScenarioSpec(
    name="gathering-spider-k3",
    kind="gathering_sweep",
    description="3-agent gathering sweep on spiders (random bounded-"
                "degree tree automaton)",
    agent="tree-random:3",
    seed=7,
    params={
        "trees": ["spider:2,2,2", "spider:2,3,4"],
        "start_sets": [[1, 3, 5], [2, 4, 6]],
        "delay_vectors": [[0, 0, 0], [0, 1, 2], [3, 0, 1]],
    },
))

register(ScenarioSpec(
    name="gathering-binary-k4",
    kind="gathering_sweep",
    description="4-agent gathering sweep on complete binary trees "
                "(random bounded-degree tree automaton)",
    agent="tree-random:4",
    seed=4,
    params={
        "trees": ["binary:2", "binary:3"],
        "start_sets": [[1, 3, 5, 6], [2, 4, 5, 6], [0, 3, 4, 6]],
        "delay_vectors": [[0, 0, 0, 0], [0, 1, 2, 3], [2, 0, 0, 1], [1, 1, 0, 2]],
    },
))
