"""The scenario runner: spec in, structured result out.

``Runner.run`` resolves a name through the registry (or takes a spec
directly), applies overrides, selects the backend, seeds the RNG from the
spec, executes, and wraps the outcome table in a :class:`ScenarioResult`
that knows how to render itself as a text table and serialize itself as
a schema-versioned JSON payload (:mod:`repro.scenarios.store`).
"""

from __future__ import annotations

import platform
import random
import sys
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from .backends import Backend, select_backend
from .executors import BACKEND_AGNOSTIC_KINDS, execute
from .spec import ScenarioError, ScenarioSpec

__all__ = ["Runner", "ScenarioResult", "format_rows"]

SCHEMA = "repro.scenario-result/v1"


def format_rows(rows: list[dict]) -> str:
    """Render an outcome table as aligned text: one header line, one line
    per row, nothing else (CLI commands print this verbatim)."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(row: dict, col: str) -> str:
        value = row.get(col)
        if value is None:
            return "-"
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    widths = {
        c: max(len(c), *(len(cell(r, c)) for r in rows)) for c in columns
    }
    lines = [" ".join(f"{c:>{widths[c]}}" for c in columns)]
    for row in rows:
        lines.append(" ".join(f"{cell(row, c):>{widths[c]}}" for c in columns))
    return "\n".join(lines)


@dataclass
class ScenarioResult:
    """A completed scenario run: the spec, its outcome table, aggregates."""

    spec: ScenarioSpec
    backend: str
    rows: list[dict]
    summary: dict
    elapsed_seconds: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def ok(self) -> bool:
        return bool(self.summary.get("ok", True))

    def spec_hash(self) -> str:
        return self.spec.spec_hash()

    def table(self) -> str:
        return format_rows(self.rows)

    def to_payload(self) -> dict:
        """The persistence schema (validated by ``store.validate_payload``)."""
        return {
            "schema": SCHEMA,
            "scenario": self.spec.name,
            "kind": self.spec.kind,
            "spec": self.spec.to_json(),
            "spec_hash": self.spec_hash(),
            "backend": self.backend,
            "rows": self.rows,
            "summary": self.summary,
            "timings": {"elapsed_seconds": round(self.elapsed_seconds, 4)},
            "environment": {
                "python": platform.python_version(),
                "implementation": sys.implementation.name,
                "platform": platform.platform(),
            },
        }


class Runner:
    """Executes :class:`ScenarioSpec` objects through a chosen backend.

    ``backend=None`` honours each spec's own hint; passing a hint string
    (or a :class:`Backend` instance) overrides it for every run —
    ``Runner(backend="reference")`` replays a whole scenario on the
    oracle engine for parity checks.
    """

    def __init__(
        self,
        backend: Union[str, Backend, None] = None,
        *,
        processes: Optional[int] = None,
    ):
        self._backend = backend
        self._processes = processes

    def resolve(self, scenario: Union[str, ScenarioSpec]) -> ScenarioSpec:
        if isinstance(scenario, ScenarioSpec):
            return scenario
        from .registry import get_scenario

        return get_scenario(scenario)

    def run(
        self,
        scenario: Union[str, ScenarioSpec],
        *,
        backend: Union[str, Backend, None] = None,
        seed: Optional[int] = None,
        params: Optional[Mapping[str, Any]] = None,
        **overrides: Any,
    ) -> ScenarioResult:
        spec = self.resolve(scenario)
        chosen = backend if backend is not None else self._backend
        if isinstance(chosen, Backend):
            spec = spec.with_overrides(seed=seed, params=params, **overrides)
            resolved = chosen
        else:
            spec = spec.with_overrides(
                backend=chosen, seed=seed, params=params, **overrides
            )
            resolved = select_backend(spec.backend, processes=self._processes)
        if spec.kind in BACKEND_AGNOSTIC_KINDS and resolved.name != "auto":
            raise ScenarioError(
                f"scenario kind {spec.kind!r} does not consult a backend "
                f"(its drivers pick their own engines); drop the "
                f"{resolved.name!r} backend selection"
            )
        rng = random.Random(spec.seed)
        start = time.perf_counter()  # repro-lint: disable=RPR003 -- provenance timing only: elapsed_seconds is recorded in the result envelope and excluded from scenario diffs; no verdict reads it
        rows, summary = execute(spec, resolved, rng)
        elapsed = time.perf_counter() - start  # repro-lint: disable=RPR003 -- provenance timing only: see above
        if "ok" not in summary:
            raise ScenarioError(
                f"executor for kind {spec.kind!r} returned no 'ok' verdict"
            )
        return ScenarioResult(
            spec=spec,
            backend=resolved.name,
            rows=rows,
            summary=summary,
            elapsed_seconds=elapsed,
        )
