"""The scenario runner: spec in, structured result out.

``Runner.run`` resolves a name through the registry (or takes a spec
directly), applies overrides, selects the backend, seeds the RNG from the
spec, executes, and wraps the outcome table in a :class:`ScenarioResult`
that knows how to render itself as a text table and serialize itself as
a schema-versioned JSON payload (:mod:`repro.scenarios.store`).
"""

from __future__ import annotations

import platform
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from ..telemetry import use as use_telemetry
from .backends import Backend, select_backend
from .executors import BACKEND_AGNOSTIC_KINDS, execute
from .spec import ScenarioError, ScenarioSpec

__all__ = ["Runner", "ScenarioResult", "format_rows"]

SCHEMA = "repro.scenario-result/v1"


def format_rows(rows: list[dict]) -> str:
    """Render an outcome table as aligned text: one header line, one line
    per row, nothing else (CLI commands print this verbatim)."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(row: dict, col: str) -> str:
        value = row.get(col)
        if value is None:
            return "-"
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    widths = {
        c: max(len(c), *(len(cell(r, c)) for r in rows)) for c in columns
    }
    lines = [" ".join(f"{c:>{widths[c]}}" for c in columns)]
    for row in rows:
        lines.append(" ".join(f"{cell(row, c):>{widths[c]}}" for c in columns))
    return "\n".join(lines)


def _environment_provenance() -> dict:
    """Interpreter, platform, numpy and kernel-cache provenance — the
    columns the service-shaped result store will key on.  ``numpy`` is
    ``None`` when absent (the kernel degrades without it, so the result
    is still valid — but a reader must be able to tell which tier could
    even have run)."""
    from ..sim.kernel import kernel_available, kernel_cache_dir

    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "numpy": numpy_version,
        "kernel": {
            "enabled": kernel_available(),
            "cache_dir_set": kernel_cache_dir() is not None,
        },
    }


@dataclass
class ScenarioResult:
    """A completed scenario run: the spec, its outcome table, aggregates.

    ``telemetry`` is the optional :mod:`repro.telemetry` snapshot of the
    run (``repro.telemetry/v1``); ``None`` — the default — keeps the
    payload byte-identical to a pre-telemetry run, so goldens and diffs
    are untouched unless a caller opts in.

    ``created_unix`` is wall-clock provenance stamped by the runner (its
    one annotated RPR003 seam); ``cached_payload`` marks a result served
    from the atlas (:mod:`repro.scenarios.atlas`) — ``to_payload``
    returns that stored document verbatim, so an atlas hit re-saved
    through any store is byte-identical to the original export.
    """

    spec: ScenarioSpec
    backend: str
    rows: list[dict]
    summary: dict
    elapsed_seconds: float
    telemetry: Optional[dict] = field(default=None)
    created_unix: Optional[float] = field(default=None)
    cached_payload: Optional[dict] = field(default=None)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def ok(self) -> bool:
        return bool(self.summary.get("ok", True))

    def spec_hash(self) -> str:
        return self.spec.spec_hash()

    def table(self) -> str:
        return format_rows(self.rows)

    def to_payload(self) -> dict:
        """The persistence schema (validated by ``store.validate_payload``).

        ``telemetry`` joins ``timings``/``environment`` as provenance:
        present only when the run collected it, excluded from diffs
        either way (``store.comparable`` picks rows + spec_hash only).
        """
        if self.cached_payload is not None:
            return self.cached_payload
        timings: dict = {"elapsed_seconds": round(self.elapsed_seconds, 4)}
        if self.created_unix is not None:
            timings["created_unix"] = round(self.created_unix, 3)
        payload = {
            "schema": SCHEMA,
            "scenario": self.spec.name,
            "kind": self.spec.kind,
            "spec": self.spec.to_json(),
            "spec_hash": self.spec_hash(),
            "backend": self.backend,
            "rows": self.rows,
            "summary": self.summary,
            "timings": timings,
            "environment": _environment_provenance(),
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ScenarioResult":
        """Rehydrate a stored payload (the atlas-hit path).  The payload
        is kept verbatim, so ``to_payload`` round-trips byte-identically."""
        timings = payload.get("timings", {})
        return cls(
            spec=ScenarioSpec.from_json(payload["spec"]),
            backend=payload["backend"],
            rows=payload["rows"],
            summary=payload["summary"],
            elapsed_seconds=float(timings.get("elapsed_seconds", 0.0)),
            telemetry=payload.get("telemetry"),
            created_unix=timings.get("created_unix"),
            cached_payload=payload,
        )


class Runner:
    """Executes :class:`ScenarioSpec` objects through a chosen backend.

    ``backend=None`` honours each spec's own hint; passing a hint string
    (or a :class:`Backend` instance) overrides it for every run —
    ``Runner(backend="reference")`` replays a whole scenario on the
    oracle engine for parity checks.

    ``telemetry=`` (a :class:`repro.telemetry.Telemetry`) collects the
    run's dispatch decisions, cache traffic and phase durations; the
    default inherits the ambient context (:func:`repro.telemetry.
    current`), which is the no-op :data:`~repro.telemetry.NULL_TELEMETRY`
    unless a caller activated one — telemetry is observationally inert
    and off by default.

    ``atlas=`` (an :class:`~repro.scenarios.atlas.AtlasStore`, or a path
    to one) memoizes runs by ``spec_hash``: ``run`` consults the atlas
    before dispatching any backend, returns the stored result on a hit
    (telemetry event ``atlas.hit``, zero backend dispatch), and records
    the computed result after a miss (``atlas.miss`` then
    ``atlas.store``).
    """

    def __init__(
        self,
        backend: Union[str, Backend, None] = None,
        *,
        processes: Optional[int] = None,
        telemetry=None,
        atlas=None,
    ):
        self._backend = backend
        self._processes = processes
        self._telemetry = telemetry
        self._atlas = atlas

    def _resolve_atlas(self, override):
        from .atlas import resolve_atlas

        if override is not None:
            return resolve_atlas(override)
        resolved = resolve_atlas(self._atlas)
        if resolved is not self._atlas:
            self._atlas = resolved  # open a path-configured atlas once
        return resolved

    def resolve(self, scenario: Union[str, ScenarioSpec]) -> ScenarioSpec:
        if isinstance(scenario, ScenarioSpec):
            return scenario
        from .registry import get_scenario

        return get_scenario(scenario)

    def run(
        self,
        scenario: Union[str, ScenarioSpec],
        *,
        backend: Union[str, Backend, None] = None,
        seed: Optional[int] = None,
        params: Optional[Mapping[str, Any]] = None,
        telemetry=None,
        atlas=None,
        **overrides: Any,
    ) -> ScenarioResult:
        from ..telemetry import current as telemetry_current

        telem = telemetry if telemetry is not None else self._telemetry
        if telem is None:
            telem = telemetry_current()
        with use_telemetry(telem):
            with telem.phase("resolve"):
                spec = self.resolve(scenario)
                chosen = backend if backend is not None else self._backend
                if isinstance(chosen, Backend):
                    spec = spec.with_overrides(
                        seed=seed, params=params, **overrides
                    )
                    resolved = chosen
                else:
                    spec = spec.with_overrides(
                        backend=chosen, seed=seed, params=params, **overrides
                    )
                    resolved = select_backend(
                        spec.backend, processes=self._processes
                    )
            if spec.kind in BACKEND_AGNOSTIC_KINDS and resolved.name != "auto":
                raise ScenarioError(
                    f"scenario kind {spec.kind!r} does not consult a backend "
                    f"(its drivers pick their own engines); drop the "
                    f"{resolved.name!r} backend selection"
                )
            atlas_store = self._resolve_atlas(atlas)
            if atlas_store is not None:
                spec_hash = spec.spec_hash()
                with telem.phase("atlas"):
                    cached = atlas_store.lookup(spec_hash)
                if cached is not None:
                    telem.event("atlas.hit", spec_hash=spec_hash,
                                scenario=spec.name, db=str(atlas_store.path))
                    return ScenarioResult.from_payload(cached)
                telem.event("atlas.miss", spec_hash=spec_hash,
                            scenario=spec.name, db=str(atlas_store.path))
            rng = random.Random(spec.seed)
            created = time.time()  # repro-lint: disable=RPR003 -- provenance timestamp only: created_unix is the atlas store's created-at column, recorded in the result envelope and excluded from scenario diffs; no verdict reads it
            start = time.perf_counter()  # repro-lint: disable=RPR003 -- provenance timing only: elapsed_seconds is recorded in the result envelope and excluded from scenario diffs; no verdict reads it
            with telem.phase("execute"):
                rows, summary = execute(spec, resolved, rng)
            elapsed = time.perf_counter() - start  # repro-lint: disable=RPR003 -- provenance timing only: see above
        if "ok" not in summary:
            raise ScenarioError(
                f"executor for kind {spec.kind!r} returned no 'ok' verdict"
            )
        result = ScenarioResult(
            spec=spec,
            backend=resolved.name,
            rows=rows,
            summary=summary,
            elapsed_seconds=elapsed,
            telemetry=telem.snapshot() if telem.enabled else None,
            created_unix=created,
        )
        if atlas_store is not None:
            atlas_store.save(result)
            telem.event("atlas.store", spec_hash=result.spec_hash(),
                        scenario=result.name, db=str(atlas_store.path))
        return result
