"""Executors: interpret a :class:`ScenarioSpec` kind against a backend.

Each executor is a thin, declarative-input adapter over the existing
analysis / lower-bound / core machinery.  It receives the spec, the
resolved :class:`~repro.scenarios.backends.Backend` and a seeded RNG, and
returns ``(rows, summary)``:

- ``rows`` — the *outcome table*: a list of flat JSON-serializable dicts,
  one per measured instance.  Rows are the unit of backend parity (the
  same scenario run on the reference and compiled backends must produce
  identical rows) and the unit of persistence/diffing
  (:mod:`repro.scenarios.store`);
- ``summary`` — scenario-level aggregates; must contain a boolean
  ``ok`` (the scenario's own acceptance check).

Executors whose agents are register *programs* (Theorem 4.1 agent, the
baseline) are compiled-backend citizens through the lowering subsystem
(:mod:`repro.sim.traced`): ``--backend compiled`` runs them on shared
solo traces / traced-table solvers with reference-parity rows.

Kinds registered with ``backend_sensitive=False`` never consult the
backend (they wrap analysis drivers that pick their own engines); the
runner rejects a non-``auto`` backend hint for them instead of recording
an engine that did no work.  ``agents=`` annotates what a kind runs when
the spec carries no agent string — ``repro scenarios list`` renders the
per-scenario backend eligibility from it.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..errors import ConstructionError
from ..sim.batch import BatchJob, derive_seed
from .backends import Backend
from .spec import ScenarioError, ScenarioSpec, build_agent, build_tree

__all__ = [
    "EXECUTORS",
    "BACKEND_AGNOSTIC_KINDS",
    "KIND_AGENTS",
    "executor",
    "execute",
    "spec_eligibility",
]

_CERTIFY_BUDGET = 200_000

EXECUTORS: dict[str, Callable] = {}
BACKEND_AGNOSTIC_KINDS: set[str] = set()
# For kinds whose agents are built internally (no spec.agent): what they
# run — "native" (automata) or "lowerable" (register programs).
KIND_AGENTS: dict[str, str] = {}


def executor(
    kind: str, *, backend_sensitive: bool = True, agents: Optional[str] = None
):
    def wrap(fn):
        EXECUTORS[kind] = fn
        if not backend_sensitive:
            BACKEND_AGNOSTIC_KINDS.add(kind)
        if agents is not None:
            KIND_AGENTS[kind] = agents
        return fn

    return wrap


def spec_eligibility(spec: ScenarioSpec) -> str:
    """How a scenario's agents meet the compiled backend.

    - ``native`` — finite-state automata, compiled directly;
    - ``lowerable`` — register programs, compiled via lowering;
    - ``reference-only`` — agents the compiled backend must reject;
    - ``agnostic`` — the kind never consults a backend.
    """
    from ..sim.compiled import supports_compilation

    if spec.kind in BACKEND_AGNOSTIC_KINDS:
        return "agnostic"
    if spec.agent:
        try:
            support = supports_compilation(build_agent(spec.agent, spec.seed))
        # repro-lint: disable=RPR002 -- eligibility listing only: a spec whose agent string the executor parameterizes (e.g. thm31-sweep's bare "counting") cannot build here; the kind annotation is the honest fallback and no verdict depends on it
        except Exception:
            # some specs carry a bare family name whose parameters the
            # executor supplies (thm31-sweep's agent is "counting"); fall
            # back to the kind's annotation rather than guessing
            return KIND_AGENTS.get(spec.kind, "?")
        return support if support else "reference-only"
    return KIND_AGENTS.get(spec.kind, "native")


def execute(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    fn = EXECUTORS.get(spec.kind)
    if fn is None:
        raise ScenarioError(
            f"no executor for scenario kind {spec.kind!r} "
            f"(known: {sorted(EXECUTORS)})"
        )
    return fn(spec, backend, rng)


# ----------------------------------------------------------------------
# Rendezvous sweeps
# ----------------------------------------------------------------------

def _spec_faults(spec: ScenarioSpec):
    """The spec's fault plan (``faults`` param, JSON form or spec strings),
    or ``None`` — sweeps without the param stay byte-identical to the
    fault-free rows they always produced."""
    from ..sim.faults import FaultPlan

    return FaultPlan.coerce(spec.param("faults"))


def _sweep_summary(rows) -> dict:
    """Shared sweep aggregates.  ``certified-never-crash`` rows count as
    certified (the non-meeting is proved; the crash is attribution), and
    a ``crashed`` counter appears only when the scenario injected faults,
    keeping fault-free summaries unchanged."""
    met = sum(r["verdict"] == "met" for r in rows)
    undecided = sum(r["verdict"] == "undecided" for r in rows)
    crashed = sum(r["verdict"] == "certified-never-crash" for r in rows)
    summary = {
        "ok": undecided == 0,  # every adversary choice was decided
        "choices": len(rows),
        "met": met,
        "certified_never": len(rows) - met - undecided,
        "undecided": undecided,
        "all_met": met == len(rows),
    }
    if crashed:
        summary["crashed"] = crashed
    return summary


@executor("delay_sweep")
def _delay_sweep(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """Decide every (delay, delayed) adversary choice for each start pair."""
    from ..trees.labelings import random_relabel

    if not spec.pairs:
        raise ScenarioError("delay_sweep needs at least one start pair")
    if spec.delays.kind != "sweep":
        raise ScenarioError("delay_sweep needs a 'sweep' delay policy")
    # params may override the policy knob (CLI: --set max_delay=64)
    max_delay = spec.param("max_delay", spec.delays.max_delay)
    max_rounds = spec.param("max_rounds")  # None -> backend's own budget
    faults = _spec_faults(spec)
    agent = build_agent(spec.agent, spec.seed)
    rows = []
    for rep in range(spec.repetitions):
        tree = build_tree(spec.tree, spec.seed)
        if spec.param("relabel", False) or rep > 0:
            tree = random_relabel(
                tree, random.Random(derive_seed(spec.seed, "relabel", rep))
            )
        for u, v in spec.pairs:
            # Pass faults only when set: fault-free sweeps keep working
            # against duck-typed backends that predate the kwarg.
            extra = {} if faults is None else {"faults": faults}
            verdicts = backend.sweep_delays(
                tree, agent, u, v,
                max_delay=max_delay, sides=spec.delays.sides,
                max_rounds=max_rounds, **extra,
            )
            for dv in verdicts:
                if dv.met:
                    verdict = "met"
                elif dv.certified_never:
                    # distinguish "never meets because a crash fault
                    # removed an agent" from an intrinsic non-meeting
                    verdict = (
                        "certified-never-crash" if dv.crashed
                        else "certified-never"
                    )
                else:
                    # a budgeted per-run backend can exhaust max_rounds
                    # without a certificate; never report that as proof
                    verdict = "undecided"
                row = {
                    "pair": f"{u},{v}",
                    "delay": dv.delay,
                    "delayed": dv.delayed,
                    "verdict": verdict,
                    "round": dv.meeting_round if dv.met else None,
                }
                if spec.repetitions > 1:
                    row = {"rep": rep, **row}
                rows.append(row)
    return rows, _sweep_summary(rows)


@executor("gathering_sweep")
def _gathering_sweep(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """Decide every (tree, start set, per-agent delay vector) gathering
    choice — the k-agent generalization of ``delay_sweep``.

    Params: ``trees`` (list of tree specs; defaults to the spec's single
    ``tree``), ``start_sets`` (list of k-node start lists), and
    ``delay_vectors`` (list of per-agent delay lists, each of length k).
    All start sets and delay vectors must share one k.  Exact backends
    decide every choice; a budgeted per-run backend may leave a choice
    ``undecided`` — reported as such, never as proof.
    """
    tree_specs = spec.param("trees") or ([spec.tree] if spec.tree else [])
    if not tree_specs:
        raise ScenarioError("gathering_sweep needs a 'trees' param or a tree spec")
    start_sets = [list(map(int, s)) for s in spec.param("start_sets", [])]
    delay_vectors = [list(map(int, v)) for v in spec.param("delay_vectors", [])]
    if not start_sets or not delay_vectors:
        raise ScenarioError("gathering_sweep needs 'start_sets' and 'delay_vectors'")
    ks = {len(s) for s in start_sets} | {len(v) for v in delay_vectors}
    if len(ks) != 1:
        raise ScenarioError(
            f"gathering_sweep start sets and delay vectors must share one "
            f"agent count, got lengths {sorted(ks)}"
        )
    agent = build_agent(spec.agent, spec.seed)
    max_rounds = spec.param("max_rounds")  # None -> backend's own budget
    faults = _spec_faults(spec)
    rows = []
    for tree_spec in tree_specs:
        tree = build_tree(tree_spec, spec.seed)
        for starts in start_sets:
            extra = {} if faults is None else {"faults": faults}
            verdicts = backend.sweep_gathering(
                tree, agent, starts, delay_vectors,
                max_rounds=max_rounds, **extra,
            )
            for vec, gv in zip(delay_vectors, verdicts):
                if gv.gathered:
                    verdict = "met"
                elif gv.certified_never:
                    verdict = (
                        "certified-never-crash" if gv.crashed
                        else "certified-never"
                    )
                else:
                    # a budgeted per-run backend can exhaust max_rounds
                    # without a certificate; never report that as proof
                    verdict = "undecided"
                rows.append(
                    {
                        "tree": tree_spec,
                        "starts": ",".join(map(str, starts)),
                        "delays": ",".join(map(str, vec)),
                        "verdict": verdict,
                        "round": gv.gathering_round if gv.gathered else None,
                    }
                )
    return rows, _sweep_summary(rows)


@executor("baseline_delays")
def _baseline_delays(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """The arbitrary-delay baseline across decades of θ (program agent)."""
    tree = build_tree(spec.tree, spec.seed)
    if not spec.pairs:
        raise ScenarioError("baseline_delays needs a start pair")
    (u, v) = spec.pairs[0]
    rows = []
    for theta, side in spec.delays.choices():
        out = backend.run(
            tree, build_agent(spec.agent, spec.seed), u, v,
            delay=theta, delayed=side,
            max_rounds=spec.param("max_rounds", _CERTIFY_BUDGET),
        )
        rows.append(
            {"delay": theta, "delayed": side, "met": out.met,
             "round": out.meeting_round}
        )
    return rows, {"ok": all(r["met"] for r in rows), "runs": len(rows)}


# ----------------------------------------------------------------------
# Lower-bound adversaries (Thm 3.1 / 4.2 / 4.3)
# ----------------------------------------------------------------------

def _recertify_many(
    backend: Backend, spec: ScenarioSpec, instances
) -> list[bool]:
    """Replay adversary instances through the scenario's backend and report
    whether non-meeting is certified there (the backend-parity seam).

    The runs are independent, so they go through ``Backend.run_many`` —
    the batched backend fans them over its process pool — and each job
    carries a seed derived from the spec's (multiprocess reproducibility).
    """
    jobs = [
        BatchJob(
            tree, agent, u, v, delay=delay, delayed=delayed,
            max_rounds=_CERTIFY_BUDGET, certify=True,
            seed=derive_seed(spec.seed, "certify", idx),
        )
        for idx, (tree, agent, u, v, delay, delayed) in enumerate(instances)
    ]
    return [bool(out.certified_never) for out in backend.run_many(jobs)]


@executor("thm31_curve", agents="native")
def _thm31_curve(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E1: defeating-line size vs memory bits (counting-walker family)."""
    from ..agents import counting_walker
    from ..analysis import growth_ratios
    from ..lowerbounds import build_thm31_instance

    built = []
    for k in spec.param("ks", [1, 2, 3, 4]):
        agent = counting_walker(k)
        inst = build_thm31_instance(agent)
        built.append((agent, inst))
    certs = _recertify_many(
        backend, spec,
        [
            (inst.tree, agent.clone(), inst.start1, inst.start2,
             inst.delay, inst.delayed)
            for agent, inst in built
        ],
    )
    rows = [
        {"bits": agent.memory_bits, "edges": inst.line_edges,
         "kind": inst.kind, "delay": inst.delay, "certified": certified}
        for (agent, inst), certified in zip(built, certs)
    ]
    ratios = growth_ratios([float(r["edges"]) for r in rows])
    return rows, {
        "ok": all(r["certified"] for r in rows),
        "growth_ratios": [round(r, 2) for r in ratios],
    }


@executor("thm31_random", agents="native")
def _thm31_random(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E1b: the Thm 3.1 adversary against random line automata."""
    from ..agents import random_line_automaton
    from ..lowerbounds import build_thm31_instance

    built = []
    for k in spec.param("states", [2, 4, 8, 16]):
        agent = random_line_automaton(k, rng)
        built.append((k, agent, build_thm31_instance(agent)))
    certs = _recertify_many(
        backend, spec,
        [
            (inst.tree, agent.clone(), inst.start1, inst.start2,
             inst.delay, inst.delayed)
            for _, agent, inst in built
        ],
    )
    rows = [
        {"states": k, "bits": inst.memory_bits, "edges": inst.line_edges,
         "kind": inst.kind, "delay": inst.delay, "certified": certified}
        for (k, agent, inst), certified in zip(built, certs)
    ]
    return rows, {"ok": all(r["certified"] for r in rows)}


@executor("thm42_structured", agents="native")
def _thm42_structured(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E5: the simultaneous-start adversary vs the structured victims."""
    from ..agents import alternator, pausing_walker
    from ..lowerbounds import build_thm42_instance

    victims = [("alternator", alternator())] + [
        (f"pausing({p})", pausing_walker(p))
        for p in range(1, spec.param("max_pause", 3) + 1)
    ]
    built = [(name, agent, build_thm42_instance(agent)) for name, agent in victims]
    certs = _recertify_many(
        backend, spec,
        [(inst.tree, agent.clone(), inst.start1, inst.start2, 0, 2)
         for _, agent, inst in built],
    )
    rows = [
        {"agent": name, "bits": agent.memory_bits, "gamma": inst.gamma,
         "edges": inst.line_edges, "certified": certified}
        for (name, agent, inst), certified in zip(built, certs)
    ]
    return rows, {"ok": all(r["certified"] for r in rows)}


@executor("thm42_random", backend_sensitive=False)
def _thm42_random(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E5b: (bits, defeating edges, kind, gamma) over a random-agent pool."""
    from ..analysis import thm42_size_vs_bits

    rows_raw = thm42_size_vs_bits(
        seed=spec.seed, states=tuple(spec.param("states", [2, 3, 4, 5]))
    )
    rows = [
        {"bits": b, "edges": e, "kind": k, "gamma": g} for b, e, k, g in rows_raw
    ]
    return rows, {"ok": bool(rows)}


@executor("thm43_instances", agents="native")
def _thm43_instances(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E6: the Ω(log ℓ) pigeonhole adversary (max degree 3)."""
    from ..agents import random_tree_automaton
    from ..lowerbounds import build_thm43_instance

    states = spec.param("states", 3)
    rows = []
    built = []  # (row index, agent, instance) for the certification pass
    for i_leaf in spec.param("i_leaves", [4, 5, 6]):
        agent = random_tree_automaton(states, rng=rng)
        try:
            inst = build_thm43_instance(agent, i_leaf)
        except ConstructionError as exc:
            rows.append(
                {"leaves": 2 * i_leaf, "bits": agent.memory_bits,
                 "n": None, "side_trees": 2 ** (i_leaf - 1),
                 "certified": False, "error": str(exc)}
            )
            continue
        built.append((len(rows), agent, inst))
        rows.append(
            {"leaves": 2 * i_leaf, "bits": inst.memory_bits, "n": inst.tree.n,
             "side_trees": 2 ** (i_leaf - 1), "certified": False,
             "ell": inst.ell, "states": agent.num_states,
             "side1": ",".join(map(str, inst.side1.choices)),
             "side2": ",".join(map(str, inst.side2.choices))}
        )
    certs = _recertify_many(
        backend, spec,
        [(inst.tree, agent.clone(), inst.two_sided.u, inst.two_sided.v, 0, 2)
         for _, agent, inst in built],
    )
    for (row_idx, _, _), certified in zip(built, certs):
        rows[row_idx]["certified"] = certified
    ok = all(r["certified"] for r in rows)
    return rows, {"ok": ok}


@executor("thm43_collisions", backend_sensitive=False)
def _thm43_collisions(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E6b: collision rate vs memory (the bound's pigeonhole mechanism)."""
    from ..agents import random_tree_automaton
    from ..lowerbounds import find_colliding_side_trees

    trials = spec.param("trials", 6)
    i_leaf = spec.param("i", 4)
    rows = []
    for k in spec.param("states", [2, 4, 8]):
        hits = 0
        for _ in range(trials):
            agent = random_tree_automaton(k, rng=rng)
            if find_colliding_side_trees(agent, i_leaf, i_leaf) is not None:
                hits += 1
        rows.append({"states": k, "collisions": hits, "trials": trials})
    return rows, {"ok": bool(rows)}


# ----------------------------------------------------------------------
# Upper-bound sweeps (Thm 4.1 / Lemma 4.1 / the gap table)
# ----------------------------------------------------------------------

@executor("success_families", agents="lowerable")
def _success_families(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E2: 100% rendezvous over feasible pairs across tree families.

    Joint runs route through the backend (the Theorem 4.1 agent is a
    register program, so ``--backend compiled`` takes the traced
    lowering path); the memory columns are solo-replay instrumentation
    and identical on every backend.
    """
    from ..analysis import success_sweep
    from ..trees.labelings import random_relabel

    pairs_per_tree = spec.param("pairs_per_tree", 3)
    rows = []
    all_ok = True
    for family, tree_specs in spec.param("families", {}).items():
        trees = []
        for idx, tspec in enumerate(tree_specs):
            seed = derive_seed(spec.seed, family, idx)
            trees.append(
                random_relabel(build_tree(tspec, seed), random.Random(seed))
            )
        points = success_sweep(
            trees, pairs_per_tree=pairs_per_tree,
            seed=derive_seed(spec.seed, family, "pairs"),
            engine=backend.run,
            pairs_engine=backend.run_pairs,
        )
        met = sum(p.met for p in points)
        all_ok &= met == len(points)
        rows.append(
            {"family": family, "runs": len(points), "met": met,
             "max_round": max((p.meeting_round for p in points), default=0)}
        )
    return rows, {"ok": all_ok}


@executor("memory_vs_n", backend_sensitive=False)
def _memory_vs_n(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E3a: declared bits vs n at fixed ℓ (subdivided binary trees)."""
    from ..analysis import memory_vs_n_fixed_leaves

    series, points = memory_vs_n_fixed_leaves(
        subdivisions=tuple(spec.param("subdivisions", [0, 1, 3, 7])),
        seed=spec.seed,
    )
    rows = [
        {"n": p.n, "leaves": p.leaves, "met": p.met, "bits": p.bits_declared}
        for p in points
    ]
    spread = max(series.ys) - min(series.ys)
    return rows, {"ok": all(p.met for p in points), "bits_spread": spread}


@executor("memory_vs_leaves", backend_sensitive=False)
def _memory_vs_leaves(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E3b: declared bits vs ℓ at roughly fixed n (double brooms)."""
    from ..analysis import memory_vs_leaves

    series, points = memory_vs_leaves(
        leaf_counts=tuple(spec.param("leaf_counts", [4, 8, 16])),
        total_nodes=spec.param("total_nodes", 80),
        seed=spec.seed,
    )
    rows = [
        {"leaves": p.leaves, "n": p.n, "met": p.met, "bits": p.bits_declared}
        for p in points
    ]
    increments = [int(b - a) for a, b in zip(series.ys, series.ys[1:])]
    return rows, {"ok": all(p.met for p in points), "increments": increments}


@executor("prime_rounds", backend_sensitive=False)
def _prime_rounds(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E4: Lemma 4.1 meeting rounds on growing odd paths."""
    from ..analysis import fit_loglog_slope, prime_rounds_vs_path_length

    series = prime_rounds_vs_path_length(
        lengths=tuple(spec.param("lengths", [5, 9, 17, 33]))
    )
    rows = [{"m": int(x), "round": int(y)} for x, y in zip(series.xs, series.ys)]
    slope = fit_loglog_slope(series.xs, series.ys)
    return rows, {"ok": 0.5 < slope < 3.5, "loglog_slope": round(slope, 2)}


@executor("prime_memory")
def _prime_memory(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E4b: worst-case prime (memory) on near-mirror hard instances.

    The register account is measured on a solo replay to the meeting
    round rather than read off ``out.agents``: an agent's trajectory
    never depends on its partner, so the replay is exact, and lowered
    (traced) outcomes deliberately carry unexecuted clones — this keeps
    the rows identical on every backend.
    """
    from ..core import prime_line_agent
    from ..core.memory import measure_memory
    from ..trees.labelings import thm31_line_labeling

    rows = []
    for m, a, b in spec.param("instances", [[20, 0, 15], [32, 0, 19]]):
        tree = thm31_line_labeling(m)
        out = backend.run(
            tree, prime_line_agent(), a, b,
            max_rounds=spec.param("max_rounds", 30_000_000),
        )
        if not out.met:  # pragma: no cover - Lemma 4.1 guarantees meeting
            raise ScenarioError(f"prime protocol failed on m={m}")
        # agent 1's run = start action + (meeting_round - 1) steps
        report = measure_memory(
            tree, a, prime_line_agent(), out.meeting_round - 1
        )
        rows.append(
            {"m": m, "a": a, "b": b, "max_prime": report.registers["prime_p"][1],
             "round": out.meeting_round}
        )
    primes = [r["max_prime"] for r in rows]
    return rows, {"ok": primes == sorted(primes) and primes[-1] <= 31}


@executor("gap_table", agents="lowerable")
def _gap_table(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E7: the headline exponential memory gap (runs via the backend;
    memory columns are solo replays, identical everywhere)."""
    from ..analysis import gap_table

    table = gap_table(
        subdivisions=tuple(spec.param("subdivisions", [0, 1, 3, 7])),
        engine=backend.run,
    )
    rows = [
        {"n": r.n, "leaves": r.leaves, "delay0_bits": r.delay0_bits,
         "arbitrary_bits": r.arbitrary_bits,
         "gap_factor": round(r.gap_factor, 2),
         "met": r.delay0_met and r.arbitrary_met}
        for r in table
    ]
    delay0 = [r["delay0_bits"] for r in rows]
    arb = [r["arbitrary_bits"] for r in rows]
    return rows, {
        "ok": all(r["met"] for r in rows)
        and max(delay0) - min(delay0) <= 4
        and arb == sorted(arb),
    }


@executor("tradeoff_reps", backend_sensitive=False)
def _tradeoff_reps(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """Time/memory trade-off: the P-repetition factor sweep."""
    from ..analysis import reps_factor_tradeoff, stress_instances

    pool = stress_instances(
        sizes=tuple(spec.param("sizes", [9, 13, 17])),
        pairs_per_tree=spec.param("pairs_per_tree", 3),
        seed=spec.seed,
    )
    table = reps_factor_tradeoff(
        factors=tuple(spec.param("factors", [1, 2, 5, 8])), instances=pool
    )
    rows = [
        {"factor": r.knob, "runs": r.runs, "met": r.met,
         "worst_round": r.worst_round, "mean_round": round(r.mean_round, 1)}
        for r in table
    ]
    return rows, {"ok": all(r.success_rate == 1.0 for r in table)}


@executor("ablation_reps", agents="lowerable")
def _ablation_reps(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """Ablation of the paper's 5ℓ repetition constant on stress lines."""
    from ..core import rendezvous_agent
    from ..trees.automorphism import perfectly_symmetrizable
    from ..trees.builders import line
    from ..trees.labelings import random_relabel

    local = random.Random(spec.seed)
    trees = [
        random_relabel(line(m), local) for m in spec.param("sizes", [9, 13])
    ]
    rows = []
    for factor in spec.param("factors", [1, 2, 5, 8]):
        met = runs = worst = 0
        for tree in trees:
            for u, v in [(0, 3), (1, 5), (2, tree.n - 1)]:
                if perfectly_symmetrizable(tree, u, v):
                    continue
                runs += 1
                out = backend.run(
                    tree, rendezvous_agent(reps_factor=factor, max_outer=10),
                    u, v, max_rounds=spec.param("max_rounds", 3_000_000),
                )
                met += out.met
                worst = max(worst, out.meeting_round or 0)
        rows.append({"factor": factor, "met": met, "runs": runs, "worst": worst})
    paper = next((r for r in rows if r["factor"] == 5), None)
    return rows, {"ok": paper is None or paper["met"] == paper["runs"]}


# ----------------------------------------------------------------------
# Verification, classification, structure
# ----------------------------------------------------------------------

@executor("exhaustive_verify", agents="lowerable")
def _exhaustive_verify(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """Exhaustive Theorem 4.1 / Fact 1.1 verification at small n.

    Routing the runs through the backend is what lets
    ``verify-small --backend compiled`` scale past n = 8: the lowering
    trace cache decides all ~n²/2 pairs of a labeled tree from at most
    n interpreted solo runs.
    """
    from ..analysis import verify_fact_11_impossibility, verify_theorem_41

    max_n = spec.param("max_n", 6)
    rep = verify_theorem_41(
        max_n=max_n,
        random_labelings=spec.param("labelings", 1),
        seed=spec.seed,
        engine=backend.run,
        pairs_engine=backend.run_pairs,
    )
    rep2 = verify_fact_11_impossibility(
        max_n=min(max_n, spec.param("fact11_max_n", 6)),
        engine=backend.run,
    )
    rows = [
        {"check": "thm41", "trees": rep.trees_checked,
         "instances": rep.instances, "failures": len(rep.failures)},
        {"check": "fact11", "trees": rep2.trees_checked,
         "instances": rep2.instances, "failures": len(rep2.failures)},
    ]
    return rows, {"ok": rep.ok and rep2.ok}


@executor("atlas", backend_sensitive=False)
def _atlas(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """Feasibility atlas over all non-isomorphic n-node trees."""
    from ..analysis import summarize_tree
    from ..trees import all_trees

    rows = []
    for idx, t in enumerate(all_trees(spec.param("n", 7))):
        s = summarize_tree(t)
        rows.append(
            {"tree#": idx, "leaves": s.leaves, "center": s.center_kind,
             "infeas": s.pairs_perfectly_symmetrizable,
             "sym-feas": s.pairs_symmetric_feasible,
             "asym": s.pairs_asymmetric}
        )
    return rows, {"ok": bool(rows), "trees": len(rows)}


@executor("program_atlas", agents="lowerable")
def _program_atlas(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """The program memory atlas: library register programs lowered,
    minimized, circuit-profiled, and paired with the lower-bound floors.

    All analysis columns are deterministic; the one dynamics column per
    row (a budgeted, uncertified probe) routes through the backend and
    is covered by the verdict-parity contract, so the whole table must
    be identical on the reference and compiled backends.
    """
    from ..analysis.program_atlas import DEFAULT_ATLAS_GRID, program_atlas_rows

    grid = spec.param("programs", DEFAULT_ATLAS_GRID)
    atlas = program_atlas_rows(
        grid,
        engine=backend.run,
        seed=spec.seed,
        state_budget=spec.param("state_budget", 4096),
        step_budget=spec.param("step_budget", 1_000_000),
        trace_budget=spec.param("trace_budget", 1_000_000),
        max_rounds=spec.param("max_rounds", 20_000),
    )
    rows = [r.to_dict() for r in atlas]
    shrunk = sum(r["min_states"] < r["raw_states"] for r in rows)
    routes = {r["route"] for r in rows}
    ok = (
        bool(rows)
        and all(r["route"] in ("A", "B") for r in rows)
        and all(r["equiv"] for r in rows)
        and all(r["min_states"] <= r["raw_states"] for r in rows)
    )
    return rows, {
        "ok": ok,
        "programs": len(dict(grid)),
        "cells": len(rows),
        "shrunk": shrunk,
        "routes": sorted(routes),
        "states_dropped": sum(
            r["raw_states"] - r["min_states"] for r in rows
        ),
    }


@executor("minimization", backend_sensitive=False)
def _minimization(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """Honest-bits check: the victim families are (near) minimal."""
    from ..agents import (
        alternator,
        compile_walker,
        counting_walker,
        minimize_line_automaton,
        pausing_walker,
    )

    victims = [
        ("alternator", alternator()),
        ("pausing(2)", pausing_walker(2)),
        ("pausing(3)", pausing_walker(3)),
        ("counting(2)", counting_walker(2)),
        ("counting(3)", counting_walker(3)),
        ("dsl F3 B1", compile_walker("F3 B1")),
        ("dsl F5 P2 B1", compile_walker("F5 P2 B1")),
    ]
    rows = []
    for name, agent in victims:
        res = minimize_line_automaton(agent)
        rows.append(
            {"agent": name, "states": res.original_states,
             "minimal": res.minimal_states}
        )
    return rows, {"ok": all(r["minimal"] >= r["states"] // 2 for r in rows)}


@executor("explo_cost", backend_sensitive=False)
def _explo_cost(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """E8 / Fact 2.1: Procedure Explo's outputs and 2(n-1) cost."""
    from ..agents import NULL_PORT, Ctx, Registers
    from ..core import explo_bis_routine
    from ..trees import (
        contract,
        find_center,
        port_preserving_automorphism,
        random_relabel,
        random_tree,
    )

    def run_explo(tree, start):
        ctx = Ctx(NULL_PORT, tree.degree(start))
        regs = Registers()
        gen = explo_bis_routine(ctx, regs)
        pos = start
        rounds = 0
        try:
            action = next(gen)
            while True:
                if action == -1:
                    obs = (NULL_PORT, tree.degree(pos))
                else:
                    pos, in_port = tree.move(pos, action % tree.degree(pos))
                    obs = (in_port, tree.degree(pos))
                rounds += 1
                action = gen.send(obs)
        except StopIteration as stop:
            return stop.value, rounds

    local = random.Random(spec.seed)
    rows = []
    correct = True
    for n in spec.param("sizes", [10, 20, 40]):
        tree = random_relabel(random_tree(n, local), local)
        start = next(v for v in range(tree.n) if tree.degree(v) != 2)
        result, rounds = run_explo(tree, start)
        tprime = contract(tree).contracted
        center = find_center(tprime)
        expected_kind = (
            "central_node"
            if center.is_node
            else (
                "central_edge_symmetric"
                if port_preserving_automorphism(tprime) is not None
                else "central_edge_asymmetric"
            )
        )
        correct &= result.kind == expected_kind and result.n == tree.n
        rows.append(
            {"n": n, "rounds": rounds, "expected": 2 * (n - 1),
             "nu": result.nu, "kind": result.kind}
        )
    cost_ok = all(r["rounds"] == r["expected"] for r in rows)
    return rows, {"ok": correct and cost_ok}


@executor("gathering", backend_sensitive=False)
def _gathering(spec: ScenarioSpec, backend: Backend, rng: random.Random):
    """k-agent gathering (§1.3 extension) on one instance."""
    from ..core import gather

    tree = build_tree(spec.tree, spec.seed)
    starts = [int(x) for x in spec.param("starts", [1, 4, 8])]
    delays = spec.param("delays") or None
    outcome, regime = gather(tree, starts, delays=delays)
    rows = [
        {"regime": regime.kind, "guaranteed": regime.guaranteed,
         "gathered": outcome.gathered, "round": outcome.gathering_round,
         "node": outcome.gathering_node,
         "largest_cluster": outcome.largest_cluster}
    ]
    return rows, {"ok": outcome.gathered or not regime.guaranteed}
