"""Declarative scenario specifications.

A :class:`ScenarioSpec` is *data*: it names a tree family, an agent
family, a delay policy, repetition/seed knobs and a backend hint, plus a
``kind`` that selects the executor (:mod:`repro.scenarios.executors`)
interpreting those fields.  Everything an experiment needs is in the
spec, so experiments can be registered, listed, hashed, serialized,
diffed and re-run — instead of living as bespoke driver code in four
different layers (``analysis/``, ``benchmarks/``, ``cli.py``,
``examples/``).

The tree / agent string grammars are the ones the CLI always used
(``line:9``, ``spider:2,3,4``, ``counting:3``, ...); :func:`build_tree`
and :func:`build_agent` are their single authoritative parsers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..errors import ReproError
from ..trees.tree import Tree

__all__ = [
    "ScenarioError",
    "DelayPolicy",
    "ScenarioSpec",
    "build_tree",
    "build_agent",
    "BACKEND_HINTS",
]

BACKEND_HINTS = ("auto", "reference", "compiled", "batched")


class ScenarioError(ReproError):
    """A scenario spec is malformed or cannot be executed."""


def build_tree(spec: str, seed: int = 0) -> Tree:
    """Parse a tree spec: ``line:9``, ``colored:9`` (2-edge-colored line),
    ``star:5``, ``binary:3``, ``binomial:4``, ``spider:2,3,4``,
    ``random:20``, ``subdivided:3`` (binary(2) base)."""
    from ..trees import (
        binomial_tree,
        complete_binary_tree,
        edge_colored_line,
        line,
        random_tree,
        spider,
        star,
        subdivide,
    )

    kind, _, arg = spec.partition(":")
    if kind == "line":
        return line(int(arg))
    if kind == "colored":
        return edge_colored_line(int(arg))
    if kind == "star":
        return star(int(arg))
    if kind == "binary":
        return complete_binary_tree(int(arg))
    if kind == "binomial":
        return binomial_tree(int(arg))
    if kind == "spider":
        return spider([int(x) for x in arg.split(",")])
    if kind == "random":
        return random_tree(int(arg), random.Random(seed))
    if kind == "subdivided":
        return subdivide(complete_binary_tree(2), int(arg))
    raise ScenarioError(f"unknown tree spec {spec!r}")


def build_agent(spec: str, seed: int = 0):
    """Parse an agent spec: ``alternator``, ``counting:3``, ``pausing:2``,
    ``random:4`` (random line automaton), ``tree-random:3`` (random
    max-degree-3 tree automaton), ``baseline``, ``thm41`` /
    ``thm41:MAX_OUTER`` (the register programs), ``prime`` /
    ``prime:MAX_PRIMES`` (unbounded, or the paper's prime(i)),
    ``counting-program:K`` / ``pausing-program:P`` (the walker zoo as
    route-A-lowerable register programs)."""
    from ..agents import counting_walker, pausing_walker, random_tree_automaton
    from ..agents.automaton import random_line_automaton
    from ..agents.library import alternator, counting_program, pausing_program

    kind, _, arg = spec.partition(":")
    if kind == "alternator":
        return alternator()
    if kind == "counting":
        return counting_walker(int(arg))
    if kind == "pausing":
        return pausing_walker(int(arg))
    if kind == "counting-program":
        return counting_program(int(arg))
    if kind == "pausing-program":
        return pausing_program(int(arg))
    if kind == "random":
        return random_line_automaton(int(arg), random.Random(seed))
    if kind == "tree-random":
        return random_tree_automaton(int(arg), rng=random.Random(seed))
    if kind == "baseline":
        from ..core import baseline_agent

        return baseline_agent()
    if kind == "thm41":
        from ..core import rendezvous_agent

        return rendezvous_agent(max_outer=int(arg) if arg else 10)
    if kind == "prime":
        from ..core import prime_line_agent

        return prime_line_agent(max_primes=int(arg) if arg else None)
    raise ScenarioError(f"unknown agent spec {spec!r}")


@dataclass(frozen=True)
class DelayPolicy:
    """How the adversary's start delay is chosen for a scenario.

    - ``none`` — simultaneous start only (θ = 0);
    - ``fixed`` — the explicit ``delays`` list, both delayed sides for
      θ > 0 (matching the sweep convention everywhere else);
    - ``sweep`` — every θ ∈ [0, max_delay], decided in one batched pass
      where the backend supports it.
    """

    kind: str = "none"  # "none" | "fixed" | "sweep"
    delays: tuple[int, ...] = ()
    max_delay: int = 0
    sides: tuple[int, ...] = (1, 2)

    def __post_init__(self) -> None:
        if self.kind not in ("none", "fixed", "sweep"):
            raise ScenarioError(f"unknown delay policy kind {self.kind!r}")
        object.__setattr__(self, "delays", tuple(self.delays))
        object.__setattr__(self, "sides", tuple(self.sides))

    @classmethod
    def none(cls) -> "DelayPolicy":
        return cls("none")

    @classmethod
    def fixed(cls, *delays: int) -> "DelayPolicy":
        return cls("fixed", delays=tuple(delays))

    @classmethod
    def sweep(cls, max_delay: int, sides: tuple[int, ...] = (1, 2)) -> "DelayPolicy":
        return cls("sweep", max_delay=max_delay, sides=tuple(sides))

    def choices(self) -> list[tuple[int, int]]:
        """The concrete (delay, delayed) grid: side 2 only at θ = 0."""
        if self.kind == "none":
            return [(0, 2)]
        thetas = self.delays if self.kind == "fixed" else range(self.max_delay + 1)
        return [
            (theta, side)
            for theta in thetas
            for side in self.sides
            if theta > 0 or side == (2 if 2 in self.sides else self.sides[0])
        ]


def _canon(value: Any) -> Any:
    """JSON-stable canonical form (tuples -> lists, sorted dict keys)."""
    if isinstance(value, dict):
        return {str(k): _canon(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ScenarioError(f"spec field is not JSON-serializable: {value!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: all inputs, no code.

    ``kind`` selects the executor; ``params`` carries the kind-specific
    knobs (sizes, sweep grids, ...).  ``backend`` is a *hint* —
    ``auto`` lets the runner pick per agent via ``supports_compilation``.
    """

    name: str
    kind: str
    description: str = ""
    tree: Optional[str] = None
    agent: Optional[str] = None
    pairs: tuple[tuple[int, int], ...] = ()
    delays: DelayPolicy = field(default_factory=DelayPolicy)
    repetitions: int = 1
    seed: int = 0
    backend: str = "auto"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_HINTS:
            raise ScenarioError(
                f"unknown backend hint {self.backend!r}; expected one of {BACKEND_HINTS}"
            )
        if self.repetitions < 1:
            raise ScenarioError("repetitions must be >= 1")
        object.__setattr__(self, "pairs", tuple(tuple(p) for p in self.pairs))
        object.__setattr__(self, "params", dict(self.params))

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def with_overrides(
        self,
        *,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
        params: Optional[Mapping[str, Any]] = None,
        **fields_: Any,
    ) -> "ScenarioSpec":
        """A copy with CLI/benchmark overrides applied (params are merged)."""
        merged = dict(self.params)
        if params:
            merged.update(params)
        if backend is not None:
            fields_["backend"] = backend
        if seed is not None:
            fields_["seed"] = seed
        return dataclasses.replace(self, params=merged, **fields_)

    def to_json(self) -> dict:
        """Canonical JSON form (the hashing / persistence representation)."""
        return _canon(
            {
                "name": self.name,
                "kind": self.kind,
                "description": self.description,
                "tree": self.tree,
                "agent": self.agent,
                "pairs": [list(p) for p in self.pairs],
                "delays": {
                    "kind": self.delays.kind,
                    "delays": list(self.delays.delays),
                    "max_delay": self.delays.max_delay,
                    "sides": list(self.delays.sides),
                },
                "repetitions": self.repetitions,
                "seed": self.seed,
                "backend": self.backend,
                "params": dict(self.params),
            }
        )

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        delays = payload.get("delays") or {}
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            description=payload.get("description", ""),
            tree=payload.get("tree"),
            agent=payload.get("agent"),
            pairs=tuple(tuple(p) for p in payload.get("pairs", ())),
            delays=DelayPolicy(
                kind=delays.get("kind", "none"),
                delays=tuple(delays.get("delays", ())),
                max_delay=delays.get("max_delay", 0),
                sides=tuple(delays.get("sides", (1, 2))),
            ),
            repetitions=payload.get("repetitions", 1),
            seed=payload.get("seed", 0),
            backend=payload.get("backend", "auto"),
            params=dict(payload.get("params", {})),
        )

    def spec_hash(self) -> str:
        """Stable content hash of everything that affects the outcome.

        The description (presentation) and the backend hint are excluded:
        backends are contractually outcome-equivalent, so the same
        scenario run on ``reference`` and ``compiled`` hashes — and
        therefore diffs — as the same experiment.
        """
        doc = self.to_json()
        doc.pop("description", None)
        doc.pop("backend", None)
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]
