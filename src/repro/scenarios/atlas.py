"""Durable atlas store: SQLite-backed, spec_hash-memoized results.

The :class:`AtlasStore` is the service-shaped sibling of
:class:`~repro.scenarios.store.ResultStore`: one SQLite database (WAL
mode, versioned schema with forward migrations) whose primary key is the
``(spec_hash, name)`` pair — ``spec_hash`` is already a stable content
address of everything that affects a scenario's outcome, so it is
exactly the key a memoizing result cache needs.  Rows carry the full
result payload *verbatim* (the canonical ``ResultStore`` serialization,
so export is byte-identical to a loose-JSON save) plus provenance
columns lifted out of it: the spec JSON, backend, environment block,
timings, telemetry summary and a created-at stamp.

Timestamps never come from this module (RPR003: no wall clock outside
the timing allowlist) — ``created_unix`` is read from the payload's
``timings`` block, where :class:`~repro.scenarios.runner.Runner` records
it at its annotated provenance seam; legacy payloads simply have NULL.

Concurrency contract (two writers, one database):

- WAL journal mode + a busy timeout, so readers never block writers;
- every upsert runs inside ``BEGIN IMMEDIATE`` — the write lock is
  taken before the conflict check, so check-then-write is atomic;
- upserting a ``(spec_hash, name)`` that already exists is
  *last-write-wins* when the comparable part (rows) is identical —
  provenance refreshes — and a :class:`ScenarioError` when the rows
  conflict: the content address says these are the same experiment, so
  disagreeing outcomes are a bug, never something to paper over.

A file that is not an SQLite database is quarantined to ``<db>.corrupt``
and a fresh database is built in its place (the cache self-heals; the
forensic copy survives) — mirroring ``ResultStore.load``'s corrupt-JSON
quarantine.  A file that *is* SQLite but belongs to something else is an
error, not a quarantine: we never destroy a database we did not create.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
from typing import Iterable, Optional, Union

from ..telemetry import current as _telemetry
from .runner import ScenarioResult
from .spec import ScenarioError
from .store import comparable, validate_payload

__all__ = [
    "AtlasStore",
    "ATLAS_SCHEMA_VERSION",
    "DEFAULT_ATLAS_PATH",
    "create_v0_db",
]

#: Current atlas schema version (``atlas_meta['schema_version']``).
ATLAS_SCHEMA_VERSION = 1

#: Where the CLI's bare ``--atlas`` flag points.
DEFAULT_ATLAS_PATH = pathlib.Path("benchmarks") / "atlas.sqlite"

#: How long a writer waits on a locked database before giving up.
BUSY_TIMEOUT_MS = 10_000

_HEX = set("0123456789abcdef")


def dump_payload_text(payload: dict) -> str:
    """Exactly ``ResultStore.save``'s serialization, so a payload stored
    here and a payload stored as a loose JSON file are byte-identical."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# Individual statements, executed one by one: ``executescript`` would
# implicitly COMMIT the caller's open transaction, and schema creation
# always runs inside BEGIN IMMEDIATE here.
_SCHEMA_V1 = (
    """
    CREATE TABLE IF NOT EXISTS atlas_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS results (
        spec_hash       TEXT NOT NULL,
        name            TEXT NOT NULL,
        scenario        TEXT NOT NULL,
        kind            TEXT NOT NULL,
        backend         TEXT NOT NULL,
        result_schema   TEXT NOT NULL,
        spec            TEXT NOT NULL,
        payload         TEXT NOT NULL,
        row_count       INTEGER NOT NULL,
        ok              INTEGER NOT NULL,
        elapsed_seconds REAL,
        created_unix    REAL,
        environment     TEXT NOT NULL,
        telemetry       TEXT,
        PRIMARY KEY (spec_hash, name)
    )
    """,
    "CREATE INDEX IF NOT EXISTS results_by_name ON results(name)",
)


def _create_schema_v1(conn: sqlite3.Connection) -> None:
    for statement in _SCHEMA_V1:
        conn.execute(statement)


def _provenance_columns(payload: dict) -> dict:
    """The indexed columns lifted out of a validated payload."""
    timings = payload.get("timings", {})
    telemetry = payload.get("telemetry")
    return {
        "spec_hash": payload["spec_hash"],
        "scenario": payload["scenario"],
        "kind": payload["kind"],
        "backend": payload["backend"],
        "result_schema": payload["schema"],
        "spec": json.dumps(payload["spec"], sort_keys=True),
        "row_count": len(payload["rows"]),
        "ok": 1 if payload["summary"].get("ok") else 0,
        "elapsed_seconds": timings.get("elapsed_seconds"),
        "created_unix": timings.get("created_unix"),
        "environment": json.dumps(payload["environment"], sort_keys=True),
        "telemetry": (
            json.dumps(telemetry, sort_keys=True) if telemetry is not None else None
        ),
    }


def _migrate_0_to_1(conn: sqlite3.Connection) -> None:
    """v0 -> v1: the prototype schema was just ``(spec_hash, name,
    payload)``; v1 lifts the provenance columns out of the payload so
    they are queryable.  Payload text is carried over *verbatim* —
    migration must never perturb a byte of a stored result."""
    rows = conn.execute(
        "SELECT spec_hash, name, payload FROM results ORDER BY rowid"
    ).fetchall()
    conn.execute("ALTER TABLE results RENAME TO results_v0")
    _create_schema_v1(conn)
    for spec_hash, name, text in rows:
        payload = json.loads(text)
        validate_payload(payload)
        cols = _provenance_columns(payload)
        if cols["spec_hash"] != spec_hash:
            raise ScenarioError(
                f"atlas migration: row {name!r} is keyed {spec_hash!r} but its "
                f"payload hashes to {cols['spec_hash']!r}"
            )
        _insert_row(conn, name, text, cols)
    conn.execute("DROP TABLE results_v0")


#: Forward migrations: version -> the function taking it one step up.
_MIGRATIONS = {0: _migrate_0_to_1}


def _insert_row(conn: sqlite3.Connection, name: str, text: str, cols: dict) -> None:
    conn.execute(
        """
        INSERT INTO results (
            spec_hash, name, scenario, kind, backend, result_schema, spec,
            payload, row_count, ok, elapsed_seconds, created_unix,
            environment, telemetry
        ) VALUES (
            :spec_hash, :name, :scenario, :kind, :backend, :result_schema,
            :spec, :payload, :row_count, :ok, :elapsed_seconds,
            :created_unix, :environment, :telemetry
        )
        ON CONFLICT (spec_hash, name) DO UPDATE SET
            scenario = excluded.scenario,
            kind = excluded.kind,
            backend = excluded.backend,
            result_schema = excluded.result_schema,
            spec = excluded.spec,
            payload = excluded.payload,
            row_count = excluded.row_count,
            ok = excluded.ok,
            elapsed_seconds = excluded.elapsed_seconds,
            created_unix = excluded.created_unix,
            environment = excluded.environment,
            telemetry = excluded.telemetry
        """,
        {**cols, "name": name, "payload": text},
    )


def create_v0_db(
    path: Union[str, pathlib.Path], entries: dict[str, str]
) -> pathlib.Path:
    """Build a v0-schema atlas (the fixture/migration seam).

    ``entries`` maps store names to *payload text* exactly as a loose
    JSON file holds it.  Used by the migration tests and by the script
    that generated the committed ``tests/scenarios/fixtures`` database —
    production code never writes v0.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path))
    try:
        conn.executescript(
            """
            CREATE TABLE atlas_meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE results (
                spec_hash TEXT NOT NULL,
                name      TEXT NOT NULL,
                payload   TEXT NOT NULL,
                PRIMARY KEY (spec_hash, name)
            );
            """
        )
        conn.execute(
            "INSERT INTO atlas_meta VALUES ('schema_version', '0')"
        )
        for name, text in entries.items():
            payload = json.loads(text)
            validate_payload(payload)
            conn.execute(
                "INSERT INTO results VALUES (?, ?, ?)",
                (payload["spec_hash"], name, text),
            )
        conn.commit()
    finally:
        conn.close()
    return path


class AtlasStore:
    """The SQLite result store behind ``Runner`` memoization.

    Implements the :class:`ResultStore` verbs (``save``/``load``/
    ``names``/``diff``; ``export`` is the ``path_for``-equivalent — it
    materializes a row back into the loose-JSON layout byte-identically)
    plus the memoization verb ``lookup(spec_hash)`` the runner consults
    before dispatching a backend.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = self._open()

    # -- lifecycle -----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        # isolation_level=None: autocommit, with explicit BEGIN IMMEDIATE
        # around every upsert — sqlite3's implicit transactions would
        # defer the write lock past the conflict check.
        conn = sqlite3.connect(
            str(self.path), timeout=BUSY_TIMEOUT_MS / 1000, isolation_level=None
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _open(self) -> sqlite3.Connection:
        try:
            conn = self._connect()
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
        except sqlite3.DatabaseError as exc:
            # Not an SQLite file at all (torn copy, disk trouble, manual
            # edit): quarantine and rebuild — the atlas is a cache of
            # results that also live elsewhere, so self-healing beats
            # failing every later run.  Mirrors ResultStore.load.
            quarantine = self.path.with_name(self.path.name + ".corrupt")
            os.replace(self.path, quarantine)
            t = _telemetry()
            if t.enabled:
                t.event("atlas.quarantine", path=str(self.path),
                        quarantine=str(quarantine), reason=str(exc))
            conn = self._connect()
            tables = set()
        if not tables:
            conn.execute("BEGIN IMMEDIATE")
            try:
                _create_schema_v1(conn)
                conn.execute(
                    "INSERT OR REPLACE INTO atlas_meta VALUES "
                    "('schema_version', ?)",
                    (str(ATLAS_SCHEMA_VERSION),),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return conn
        if "atlas_meta" not in tables or "results" not in tables:
            conn.close()
            raise ScenarioError(
                f"{self.path} is an SQLite database but not an atlas "
                f"(tables: {sorted(tables)}); refusing to touch it"
            )
        self._migrate(conn)
        return conn

    def _migrate(self, conn: sqlite3.Connection) -> None:
        version = self._version(conn)
        if version > ATLAS_SCHEMA_VERSION:
            conn.close()
            raise ScenarioError(
                f"atlas {self.path} has schema version {version}, newer than "
                f"this code's {ATLAS_SCHEMA_VERSION}; upgrade repro instead "
                f"of downgrading the database"
            )
        while version < ATLAS_SCHEMA_VERSION:
            step = _MIGRATIONS[version]
            conn.execute("BEGIN IMMEDIATE")
            try:
                # Re-check under the write lock: a concurrent opener may
                # have migrated between our read and our BEGIN.
                version = self._version(conn)
                if version < ATLAS_SCHEMA_VERSION:
                    step(conn)
                    version += 1
                    conn.execute(
                        "INSERT OR REPLACE INTO atlas_meta VALUES "
                        "('schema_version', ?)",
                        (str(version),),
                    )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            t = _telemetry()
            if t.enabled:
                t.event("atlas.migrate", path=str(self.path), to_version=version)

    @staticmethod
    def _version(conn: sqlite3.Connection) -> int:
        row = conn.execute(
            "SELECT value FROM atlas_meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            raise ScenarioError("atlas_meta lacks a schema_version row")
        return int(row[0])

    @property
    def schema_version(self) -> int:
        return self._version(self._conn)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "AtlasStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- writes --------------------------------------------------------

    def save(self, result: ScenarioResult) -> pathlib.Path:
        """Upsert a completed run under its scenario name.  Returns the
        database path (the ``ResultStore.save`` contract returns where
        the result now lives)."""
        payload = result.to_payload()
        self._upsert(result.name, payload, dump_payload_text(payload))
        return self.path

    def import_file(
        self, path: Union[str, pathlib.Path], *, name: Optional[str] = None
    ) -> str:
        """Import one loose-JSON result file, preserving its exact text
        so export round-trips byte-identically."""
        path = pathlib.Path(path)
        text = path.read_text()
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(
                f"cannot import {path}: not valid JSON ({exc})"
            ) from None
        if name is None:
            name = path.stem
        self._upsert(name, payload, text)
        return name

    def import_tree(self, root: Union[str, pathlib.Path]) -> list[str]:
        """Bulk-import every ``*.json`` under ``root`` (recursively),
        naming rows by their root-relative path sans suffix — so
        ``golden/verify-small.json`` imports as ``golden/verify-small``
        and never collides with the live ``verify-small`` row even
        though both share one spec_hash."""
        root = pathlib.Path(root)
        if not root.is_dir():
            raise ScenarioError(f"atlas import: {root} is not a directory")
        imported: list[str] = []
        for path in sorted(root.rglob("*.json")):
            rel = path.relative_to(root)
            name = str(rel.with_suffix("")).replace(os.sep, "/")
            imported.append(self.import_file(path, name=name))
        return imported

    def _upsert(self, name: str, payload: dict, text: str) -> None:
        validate_payload(payload)
        cols = _provenance_columns(payload)
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT payload FROM results WHERE spec_hash=? AND name=?",
                (cols["spec_hash"], name),
            ).fetchone()
            if row is not None:
                existing = json.loads(row[0])
                if comparable(existing) != comparable(payload):
                    raise ScenarioError(
                        f"atlas conflict for {name!r} "
                        f"(spec_hash {cols['spec_hash']}): stored rows differ "
                        f"from the new result — same content address, "
                        f"different outcome is a bug, refusing to overwrite"
                    )
            _insert_row(conn, name, text, cols)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        t = _telemetry()
        if t.enabled:
            t.count("atlas.store")

    # -- reads ---------------------------------------------------------

    def lookup(self, spec_hash: str) -> Optional[dict]:
        """The memoization read: the most recently stored payload for a
        content address, or ``None``.  Any name will do — rows sharing a
        spec_hash are contractually outcome-identical (the upsert
        enforces it per name; backends are outcome-equivalent across
        names by the spec_hash contract)."""
        row = self._conn.execute(
            "SELECT payload FROM results WHERE spec_hash=? "
            "ORDER BY rowid DESC LIMIT 1",
            (spec_hash,),
        ).fetchone()
        if row is None:
            return None
        payload = json.loads(row[0])
        validate_payload(payload)
        return payload

    def _row_text(self, name: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT payload FROM results WHERE name=? ORDER BY rowid DESC LIMIT 1",
            (name,),
        ).fetchone()
        return None if row is None else row[0]

    def load(self, name_or_path: Union[str, pathlib.Path]) -> dict:
        """Load by store name (``verify-small``, ``golden/verify-small``),
        by 16-hex spec_hash, or — for diff interop with loose files — by
        an existing JSON path."""
        if isinstance(name_or_path, pathlib.Path):
            return self._load_file(name_or_path)
        text = str(name_or_path)
        if text.endswith(".json") and pathlib.Path(text).exists():
            return self._load_file(pathlib.Path(text))
        name = text[: -len(".json")] if text.endswith(".json") else text
        stored = self._row_text(name)
        if stored is None and len(name) == 16 and set(name) <= _HEX:
            payload = self.lookup(name)
            if payload is not None:
                return payload
        if stored is None:
            raise ScenarioError(f"no atlas result named {name!r} in {self.path}")
        payload = json.loads(stored)
        validate_payload(payload)
        return payload

    @staticmethod
    def _load_file(path: pathlib.Path) -> dict:
        if not path.exists():
            raise ScenarioError(f"no stored result at {path}")
        payload = json.loads(path.read_text())
        validate_payload(payload)
        return payload

    def names(self) -> list[str]:
        return sorted(
            row[0] for row in self._conn.execute("SELECT DISTINCT name FROM results")
        )

    def diff(
        self,
        a: Union[str, pathlib.Path],
        b: Union[str, pathlib.Path],
    ) -> list[str]:
        from .store import diff_payloads

        return diff_payloads(self.load(a), self.load(b))

    # -- export (the path_for-equivalent) ------------------------------

    def export(
        self, name: str, out_dir: Union[str, pathlib.Path]
    ) -> pathlib.Path:
        """Materialize one row back into the loose-JSON layout,
        byte-identical to what was saved or imported."""
        text = self._row_text(name)
        if text is None:
            raise ScenarioError(f"no atlas result named {name!r} in {self.path}")
        out = pathlib.Path(out_dir) / f"{name}.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        tmp = out.with_name(out.name + ".tmp")
        try:
            tmp.write_text(text)
            os.replace(tmp, out)
        finally:
            tmp.unlink(missing_ok=True)
        return out

    def export_all(self, out_dir: Union[str, pathlib.Path]) -> list[pathlib.Path]:
        return [self.export(name, out_dir) for name in self.names()]

    # -- maintenance ---------------------------------------------------

    def stats(self) -> dict:
        """Row counts and shape — the ``repro atlas stats`` payload."""
        conn = self._conn

        def _group(column: str) -> dict:
            return {
                key: n
                for key, n in conn.execute(
                    f"SELECT {column}, COUNT(*) FROM results "
                    f"GROUP BY {column} ORDER BY {column}"
                )
            }

        (total,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
        (hashes,) = conn.execute(
            "SELECT COUNT(DISTINCT spec_hash) FROM results"
        ).fetchone()
        return {
            "path": str(self.path),
            "schema_version": self.schema_version,
            "results": total,
            "distinct_spec_hashes": hashes,
            "by_kind": _group("kind"),
            "by_backend": _group("backend"),
            "db_bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    def vacuum(self) -> None:
        """Checkpoint the WAL, rebuild the file, verify integrity."""
        conn = self._conn
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        conn.execute("VACUUM")
        (status,) = conn.execute("PRAGMA integrity_check").fetchone()
        if status != "ok":
            raise ScenarioError(
                f"atlas {self.path} failed integrity check after vacuum: {status}"
            )


def resolve_atlas(
    atlas: Union["AtlasStore", str, pathlib.Path, None],
) -> Optional["AtlasStore"]:
    """Coerce a Runner/CLI ``atlas=`` argument into an open store."""
    if atlas is None or isinstance(atlas, AtlasStore):
        return atlas
    return AtlasStore(atlas)


def import_paths(store: AtlasStore, paths: Iterable[Union[str, pathlib.Path]]) -> list[str]:
    """Import files and/or directories (the CLI ``atlas import`` verb)."""
    imported: list[str] = []
    for item in paths:
        p = pathlib.Path(item)
        if p.is_dir():
            imported.extend(store.import_tree(p))
        else:
            imported.append(store.import_file(p))
    return imported
