"""repro — reproduction of Fraigniaud & Pelc (SPAA 2010):
"Delays induce an exponential memory gap for rendezvous in trees".

Public API layout
-----------------
- :mod:`repro.trees` — port-labeled anonymous trees, families, labelings,
  centers, contractions, symmetry/feasibility theory, basic walks;
- :mod:`repro.agents` — finite-state automata and bounded-register agent
  programs, with bit-accurate memory accounting;
- :mod:`repro.sim` — the synchronous two-agent simulator with delay control
  and non-meeting certification;
- :mod:`repro.core` — the paper's rendezvous algorithms: Explo/Explo-bis
  (Fact 2.1), Synchro, the prime-speed line protocol (Lemma 4.1), the full
  O(log ℓ + log log n) agent (Theorem 4.1) and the arbitrary-delay baseline;
- :mod:`repro.lowerbounds` — the three constructive adversaries
  (Theorems 3.1, 4.2, 4.3);
- :mod:`repro.analysis` — feasibility classification and the
  exponential-gap experiment drivers;
- :mod:`repro.scenarios` — the declarative scenario subsystem: named
  specs, pluggable simulation backends, structured JSON results.

Quick start
-----------
>>> from repro import trees, core, sim
>>> t = trees.complete_binary_tree(3)
>>> agent = core.rendezvous_agent()
>>> outcome = sim.run_rendezvous(t, agent, 3, 11, delay=0)
>>> outcome.met
True
"""

from . import agents, errors, sim, trees

__version__ = "1.0.0"

__all__ = ["trees", "agents", "sim", "errors", "__version__"]


def _load_optional() -> None:  # pragma: no cover - import side effect
    """Late-bind the heavier subpackages so `import repro` stays cheap."""


try:  # core depends on everything above; keep import errors readable
    from . import core, lowerbounds, analysis  # noqa: E402  (cycle-free order)

    __all__ += ["core", "lowerbounds", "analysis"]
except ImportError:  # pragma: no cover - during partial builds only
    pass
