"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidTreeError(ReproError):
    """The given adjacency structure is not a valid port-labeled tree."""


class InvalidPortError(ReproError):
    """A port number is out of range for the node it is used at."""


class InvalidLabelingError(ReproError):
    """A port labeling is malformed (not a permutation per node, etc.)."""


class SimulationError(ReproError):
    """The synchronous simulator was driven into an inconsistent state."""


class BudgetExceededError(SimulationError):
    """An exact solver's configuration-exploration guard tripped.

    Distinguishable from other :class:`SimulationError` causes so sweep
    backends can degrade to budgeted per-run verdicts instead of
    aborting the whole sweep."""


class LoweringError(SimulationError):
    """A register program could not be lowered to an automaton or trace.

    Raised for *structural* obstacles — machine state the lowering pass
    cannot capture (unfreezable frame locals, start behavior that depends
    on the start degree) or a state-key collision it refuses to paper
    over.  Budget exhaustion raises :class:`BudgetExceededError` instead;
    sweep backends catch both and degrade to the reference engine."""


class AgentProtocolError(ReproError):
    """An agent program violated the action/observation protocol."""


class InfeasibleRendezvousError(ReproError):
    """Rendezvous was requested from perfectly symmetrizable positions."""


class ConstructionError(ReproError):
    """A lower-bound adversarial construction could not be completed."""
