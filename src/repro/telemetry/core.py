"""The telemetry context: counters, spans, events, and the contextvar.

Everything here is stdlib-only and import-leaf (no sim/scenarios
imports), so any layer of the stack can instrument itself without
cycles.  Span timing reads :func:`time.monotonic` — the only clock this
package may touch (RPR003 allowlists ``telemetry/`` for the monotonic
family only; wall time must never reach an event payload).
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Any, Iterator, Optional

__all__ = [
    "SCHEMA",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "current",
    "use",
]

SCHEMA = "repro.telemetry/v1"


class _NullSpan:
    """A reusable no-op context manager (one shared instance, no
    allocation per ``span()`` call on the disabled path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The default, disabled context: every operation is a no-op.

    Instrumented seams guard with ``if t.enabled:`` so the off path
    costs one contextvar read plus one attribute check — cheap enough
    to leave in the kernel dispatch and cache lookups permanently.
    """

    __slots__ = ()

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        return None

    def event(self, name: str, **fields: Any) -> None:
        return None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def phase(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, seconds: float, n: int = 1) -> None:
        return None

    def merge(self, batch: Optional[dict]) -> None:
        return None

    def snapshot(self) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


class _Span:
    """One timed region; records into its owner on exit."""

    __slots__ = ("_owner", "_name", "_phase", "_t0")

    def __init__(self, owner: "Telemetry", name: str, phase: bool):
        self._owner = owner
        self._name = name
        self._phase = phase
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.monotonic() - self._t0
        self._owner.add_span(self._name, elapsed)
        if self._phase:
            phases = self._owner.phases
            phases[self._name] = phases.get(self._name, 0.0) + elapsed


class Telemetry:
    """An active telemetry context: aggregates in-memory, streams to an
    optional sink.

    In-memory state is bounded regardless of run length: counters and
    span aggregates are per-name, and events are kept as per-name
    *counts* — the full structured records go to ``sink`` (a
    :class:`~repro.telemetry.sinks.JsonlSink` or anything with an
    ``emit(record: dict)`` method) when one is attached.
    """

    enabled = True

    __slots__ = ("counters", "spans", "phases", "events", "sink")

    def __init__(self, sink: Optional[Any] = None):
        self.counters: dict[str, int] = {}
        self.spans: dict[str, list] = {}  # name -> [count, total_seconds]
        self.phases: dict[str, float] = {}
        self.events: dict[str, int] = {}
        self.sink = sink

    # -- primitives ----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def event(self, name: str, **fields: Any) -> None:
        self.events[name] = self.events.get(name, 0) + 1
        if self.sink is not None:
            self.sink.emit({"event": name, **fields})

    def span(self, name: str) -> _Span:
        return _Span(self, name, phase=False)

    def phase(self, name: str) -> _Span:
        return _Span(self, name, phase=True)

    def add_span(self, name: str, seconds: float, n: int = 1) -> None:
        """Record an externally-timed duration (the supervised pool times
        jobs with its own allowlisted clocks)."""
        agg = self.spans.get(name)
        if agg is None:
            self.spans[name] = [n, seconds]
        else:
            agg[0] += n
            agg[1] += seconds
        if self.sink is not None:
            self.sink.emit({"event": "span", "name": name,
                            "seconds": round(seconds, 6)})

    # -- worker batches ------------------------------------------------

    def export_batch(self) -> dict:
        """A JSON/pickle-safe batch for crossing a process boundary."""
        return {
            "counters": dict(self.counters),
            "spans": {k: list(v) for k, v in self.spans.items()},
            "phases": dict(self.phases),
            "events": dict(self.events),
        }

    def merge(self, batch: Optional[dict]) -> None:
        """Fold a worker's :meth:`export_batch` into this context."""
        if not batch:
            return
        for name, n in batch.get("counters", {}).items():
            self.count(name, n)
        for name, (n, seconds) in batch.get("spans", {}).items():
            agg = self.spans.get(name)
            if agg is None:
                self.spans[name] = [n, seconds]
            else:
                agg[0] += n
                agg[1] += seconds
        for name, seconds in batch.get("phases", {}).items():
            self.phases[name] = self.phases.get(name, 0.0) + seconds
        for name, n in batch.get("events", {}).items():
            self.events[name] = self.events.get(name, 0) + n

    # -- output --------------------------------------------------------

    def snapshot(self) -> dict:
        """The schema-versioned aggregate (the ``telemetry`` block in
        ``ScenarioResult.to_payload()``)."""
        return {
            "schema": SCHEMA,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "spans": {
                k: {"count": v[0], "seconds": round(v[1], 6)}
                for k, v in sorted(self.spans.items())
            },
            "phases": {k: round(v, 6) for k, v in sorted(self.phases.items())},
            "events": {k: self.events[k] for k in sorted(self.events)},
        }


_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_telemetry", default=NULL_TELEMETRY
)


def current():
    """The ambient telemetry context (:data:`NULL_TELEMETRY` unless a
    caller activated one with :func:`use`)."""
    return _CURRENT.get()


@contextlib.contextmanager
def use(telemetry) -> Iterator[Any]:
    """Make ``telemetry`` the ambient context for the dynamic extent."""
    token = _CURRENT.set(telemetry)
    try:
        yield telemetry
    finally:
        _CURRENT.reset(token)
