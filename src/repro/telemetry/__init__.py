"""Structured tracing, metrics, and profiling hooks (zero-dependency).

The stack runs four execution tiers (reference, compiled, traced,
kernel), a supervised multiprocess pool, and an on-disk kernel cache —
this package is how you *see* what actually happened: which tier a
dispatch chose, whether the memmap cache hit, how frontier lanes
compacted, where wall-clock went.

Three primitives, one process-local context:

- **counters** — monotone named integers (``kernel.table.disk_hit``);
- **spans** — named duration aggregates timed with the monotonic clock
  (count + total seconds; ``phase/execute``);
- **events** — structured records streamed to an optional JSONL sink,
  aggregated in-memory as per-name counts.

The ambient context is a :mod:`contextvars` variable defaulting to
:data:`NULL_TELEMETRY`, whose every operation is a no-op behind an
``enabled`` flag — instrumented hot seams pay one contextvar read and
one attribute check when telemetry is off, so fault-free goldens and
bench numbers stay byte-identical.  Activate with
:func:`use` (or the ``telemetry=`` seam on
:class:`~repro.scenarios.runner.Runner`); supervised pool workers run
each job under a fresh context and serialize the batch back over the
existing pipe protocol.

Determinism contract: span timing uses the monotonic clock only, inside
this package only (``repro.lint`` RPR003 allowlists exactly that), and
no event payload ever carries wall time — telemetry must be
observationally inert on verdict rows.
"""

from .core import (
    SCHEMA,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current,
    use,
)
from .sinks import JsonlSink, aggregate_events, read_events, summary_rows

__all__ = [
    "SCHEMA",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "current",
    "use",
    "JsonlSink",
    "aggregate_events",
    "read_events",
    "summary_rows",
]
