"""Event sinks and offline aggregation for telemetry streams.

:class:`JsonlSink` appends one JSON object per line and flushes per
record, so a killed sweep loses at most one torn tail line —
:func:`read_events` tolerates exactly that (the same contract as
:class:`~repro.sim.supervise.SweepCheckpoint`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Union

__all__ = ["JsonlSink", "read_events", "aggregate_events", "summary_rows"]


class JsonlSink:
    """Append-only JSONL event stream (one dict per line).

    The file is opened lazily on the first :meth:`emit` and appended to,
    so several runs can share one stream.  Write failures raise — a
    caller who asked for an event stream should not silently lose it.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self._fh = None

    def emit(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_events(path: Union[str, os.PathLike]) -> tuple[list[dict], int]:
    """Parse a JSONL event stream; ``(records, skipped)``.

    Anything that does not parse as a JSON object with an ``"event"``
    key is skipped and counted — a torn tail (the writer died mid-line)
    or a foreign line costs one record, never the file.
    """
    records: list[dict] = []
    skipped = 0
    p = Path(path)
    if not p.exists():
        return records, skipped
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(rec, dict) or "event" not in rec:
            skipped += 1
            continue
        records.append(rec)
    return records, skipped


def aggregate_events(records: Iterable[dict]) -> dict:
    """Fold an event stream back into a snapshot-shaped aggregate.

    ``span`` events rebuild the span aggregates; everything else becomes
    a per-name event count.  The result matches
    :meth:`~repro.telemetry.core.Telemetry.snapshot` minus counters
    (counters are in-memory aggregates, never streamed per-increment).
    """
    from .core import SCHEMA

    spans: dict[str, list] = {}
    events: dict[str, int] = {}
    for rec in records:
        name = rec["event"]
        if name == "span" and "name" in rec:
            agg = spans.setdefault(rec["name"], [0, 0.0])
            agg[0] += 1
            agg[1] += float(rec.get("seconds", 0.0))
        else:
            events[name] = events.get(name, 0) + 1
    return {
        "schema": SCHEMA,
        "counters": {},
        "spans": {
            k: {"count": v[0], "seconds": round(v[1], 6)}
            for k, v in sorted(spans.items())
        },
        "phases": {},
        "events": {k: events[k] for k in sorted(events)},
    }


def summary_rows(snapshot: dict) -> list[dict]:
    """Flatten a snapshot into table rows for ``format_rows``: one row
    per metric, columns ``metric | kind | count | seconds``."""
    rows: list[dict] = []
    for name, seconds in snapshot.get("phases", {}).items():
        rows.append({"metric": f"phase/{name}", "kind": "phase",
                     "count": None, "seconds": round(seconds, 4)})
    for name, agg in snapshot.get("spans", {}).items():
        rows.append({"metric": name, "kind": "span",
                     "count": agg["count"],
                     "seconds": round(agg["seconds"], 4)})
    for name, n in snapshot.get("counters", {}).items():
        rows.append({"metric": name, "kind": "counter",
                     "count": n, "seconds": None})
    for name, n in snapshot.get("events", {}).items():
        rows.append({"metric": name, "kind": "event",
                     "count": n, "seconds": None})
    return rows
