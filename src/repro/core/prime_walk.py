"""The prime-speed rendezvous protocol on paths (Lemma 4.1).

Protocol ``prime`` for two identical *blind* agents on an m-node path:

    start in an arbitrary direction;
    move at speed 1 until reaching one extremity of the path;
    p <- 2
    while no rendezvous:
        traverse the entire path twice, at speed 1/p
        p <- smallest prime larger than p

Speed ``1/s`` means the agent idles ``s-1`` rounds before traversing each
edge.  ``prime(i)`` is the variant that stops after the i-th prime.  The
lemma: whenever blind rendezvous on the path is feasible (m odd, or m even
and the starts not mirror-symmetric), the agents meet by prime index
``O(log m)`` — memory O(log log m) bits: the protocol stores only the
current prime and an idle countdown.

The same routine runs on the *virtual* rendezvous path P of Theorem 4.1 via
a navigator object (see :mod:`repro.core.rendezvous_path`); a navigator
encapsulates "traverse the path once from the extremity you are at".
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..agents.program import AgentProgram, Ctx, Registers, Routine, move, stay

__all__ = [
    "is_prime",
    "next_prime",
    "nth_prime",
    "PathNavigator",
    "LineNavigator",
    "prime_rendezvous_routine",
    "prime_line_agent",
    "blind_rendezvous_feasible",
]


def is_prime(x: int) -> bool:
    """Trial-division primality — the 'exhaustive search' the paper allows
    (finding the next prime with O(log p) bits)."""
    if x < 2:
        return False
    if x < 4:
        return True
    if x % 2 == 0:
        return False
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True


def next_prime(p: int) -> int:
    """The smallest prime strictly larger than ``p``."""
    q = p + 1
    while not is_prime(q):
        q += 1
    return q


_NTH_PRIME_CACHE = [2]


def nth_prime(i: int) -> int:
    """The i-th prime (1-based: nth_prime(1) == 2).

    Memoized: the round-budget estimator calls this per solved pair, so
    grid workloads (exhaustive verification) hit it tens of thousands of
    times.  The cache is simulator bookkeeping — the *agents* still find
    their next prime by trial division, as the paper's memory account
    requires.
    """
    if i < 1:
        raise ValueError("prime index is 1-based")
    while len(_NTH_PRIME_CACHE) < i:
        _NTH_PRIME_CACHE.append(next_prime(_NTH_PRIME_CACHE[-1]))
    return _NTH_PRIME_CACHE[i - 1]


def blind_rendezvous_feasible(m: int, a: int, b: int) -> bool:
    """Lemma 4.1 feasibility on the m-node path (1-based positions a < b):
    possible iff m is odd, or m is even and a - 1 != m - b."""
    if not (1 <= a < b <= m):
        raise ValueError("need 1 <= a < b <= m")
    return m % 2 == 1 or (a - 1) != (m - b)


class PathNavigator(Protocol):
    """One path traversal, from the extremity the agent stands on to the
    other, at speed ``1/speed`` (idle ``speed-1`` rounds before each move)."""

    def traverse(self, ctx: Ctx, regs: Registers, speed: int) -> Routine: ...


class LineNavigator:
    """Navigator for a *real* path: blind traversal end to end.

    At a degree-2 node "the other edge" is ``1 - in_port`` whatever the port
    labeling — this is exactly the paper's blind-agent ability.
    """

    def traverse(self, ctx: Ctx, regs: Registers, speed: int) -> Routine:
        yield from stay(ctx, speed - 1)
        yield from move(ctx, 0)  # an extremity has the single port 0
        while ctx.degree == 2:
            # Capture the continuation port before idling: a null move
            # resets the observation to (-1, d) (paper §2.1), so the entry
            # port must be held across the idle rounds.
            port = 1 - ctx.in_port
            yield from stay(ctx, speed - 1)
            yield from move(ctx, port)


def prime_rendezvous_routine(
    ctx: Ctx,
    regs: Registers,
    navigator: PathNavigator,
    max_primes: Optional[int] = None,
) -> Routine:
    """The prime loop, starting from an extremity of the (possibly virtual)
    path: for each of the first ``max_primes`` primes p (all primes when
    ``None``), traverse the path twice at speed 1/p.

    Each double traversal returns the agent to the extremity it started
    this prime at, so the routine as a whole is extremity-preserving.
    """
    p = 2
    k = 1
    while max_primes is None or k <= max_primes:
        regs.declare("prime_p", p)
        regs["prime_p"] = p
        regs.declare("prime_k", k)
        regs["prime_k"] = k
        yield from navigator.traverse(ctx, regs, p)
        yield from navigator.traverse(ctx, regs, p)
        p = next_prime(p)
        k += 1


def _prime_line_program(
    start_degree: int, regs: Registers, max_primes: Optional[int]
) -> Routine:
    """Lemma 4.1's full agent for real paths."""
    ctx = Ctx(-1, start_degree)
    if ctx.degree == 0:  # one-node path: wait (rendezvous is trivial)
        return
    # Start in "arbitrary" direction — port 0 (both agents use the same
    # deterministic rule, as identical agents must) — and move at speed 1
    # until an extremity is reached.
    if ctx.degree != 1:
        yield from move(ctx, 0)
        while ctx.degree == 2:
            yield from move(ctx, 1 - ctx.in_port)
    yield from prime_rendezvous_routine(ctx, regs, LineNavigator(), max_primes)


def prime_line_agent(max_primes: Optional[int] = None) -> AgentProgram:
    """The Lemma 4.1 blind agent for paths, as a simulator-ready program.

    ``max_primes=i`` yields the paper's ``prime(i)``; the default runs the
    unbounded protocol (the simulator's round budget bounds it in practice).
    """
    return AgentProgram(_prime_line_program, max_primes)
