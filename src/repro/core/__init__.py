"""The paper's rendezvous algorithms (the primary contribution).

- :mod:`repro.core.explo` — Explo / Explo-bis (Fact 2.1);
- :mod:`repro.core.synchro` — resynchronization (Sub-stage 2.1);
- :mod:`repro.core.prime_walk` — the prime-speed path protocol (Lemma 4.1);
- :mod:`repro.core.rendezvous_path` — the virtual path P (Claim 4.3);
- :mod:`repro.core.algorithm` — the full O(log ℓ + log log n) agent (Thm 4.1);
- :mod:`repro.core.baseline` — the arbitrary-delay Θ(log n) baseline;
- :mod:`repro.core.rendezvous` — the public ``solve`` API;
- :mod:`repro.core.memory` — bit accounting and reference curves.
"""

from .algorithm import rendezvous_agent, rendezvous_program
from .baseline import baseline_agent, baseline_program, invariant_rank
from .gathering import GatheringRegime, classify_gathering, gather
from .explo import (
    CENTRAL_EDGE_ASYMMETRIC,
    CENTRAL_EDGE_SYMMETRIC,
    CENTRAL_NODE,
    ExploResult,
    explo_bis_routine,
    explo_routine,
    walk_to_branching_count,
)
from .memory import (
    MemoryReport,
    log_bits,
    loglog_bits,
    measure_memory,
    memory_report,
    upper_bound_bits,
)
from .prime_walk import (
    LineNavigator,
    blind_rendezvous_feasible,
    is_prime,
    next_prime,
    nth_prime,
    prime_line_agent,
    prime_rendezvous_routine,
)
from .rendezvous import SolveResult, estimate_round_budget, solve, solve_with_delay
from .rendezvous_path import RendezvousPathNavigator, rendezvous_path_num_edges
from .synchro import synchro_routine

__all__ = [
    "rendezvous_agent",
    "gather",
    "classify_gathering",
    "GatheringRegime",
    "rendezvous_program",
    "baseline_agent",
    "baseline_program",
    "invariant_rank",
    "ExploResult",
    "explo_routine",
    "explo_bis_routine",
    "walk_to_branching_count",
    "CENTRAL_NODE",
    "CENTRAL_EDGE_ASYMMETRIC",
    "CENTRAL_EDGE_SYMMETRIC",
    "synchro_routine",
    "prime_line_agent",
    "prime_rendezvous_routine",
    "LineNavigator",
    "is_prime",
    "next_prime",
    "nth_prime",
    "blind_rendezvous_feasible",
    "RendezvousPathNavigator",
    "rendezvous_path_num_edges",
    "solve",
    "solve_with_delay",
    "SolveResult",
    "estimate_round_budget",
    "MemoryReport",
    "memory_report",
    "measure_memory",
    "upper_bound_bits",
    "loglog_bits",
    "log_bits",
]
