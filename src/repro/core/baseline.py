"""Arbitrary-delay rendezvous baseline: the Θ(log n) side of the gap.

The paper cites [14] (Czyzowicz–Kosowski–Pelc) for an O(log n)-bit agent
that rendezvous in arbitrary graphs under arbitrary delay.  The gap table
(EXPERIMENTS.md, E7) needs a concrete arbitrary-delay agent for trees; this
module provides a tree-specialized stand-in (DESIGN.md substitution: same
guarantee on trees, simpler machinery than [14]'s universal sequences):

1.  Explore (closed basic walk, reconstruct the labeled tree, return home).
2.  Central node, or central edge whose labeled halves differ → walk to the
    canonically chosen node and wait forever.  Correct under any delay.
3.  Labeled tree symmetric (unique nontrivial port-preserving automorphism
    ``f``) → *label-based time multiplexing*: the agent derives a perfect
    short label — the rank of the invariant key

        K(w) = sorted pair of port-labeled marked codes of T rooted at the
               two central-edge extremities, marked at w

    which satisfies K(w) = K(w') iff w' ∈ {w, f(w)}.  Non-symmetric starts
    thus get distinct ranks in [0, n).  The agent repeats forever the block
    sequence ``111 000 · Manchester(rank bits)`` where block 1 = two full
    basic-walk tours from home and block 0 = an equally long wait at home.
    For any delay, distinct labels force some full tour of one agent inside
    a full waiting block of the other (the ``111``/``000`` header makes the
    block sequences shift-distinguishable; Manchester bodies never contain
    ``111``), and a full tour visits every node — rendezvous.

Memory: all *registers* (step counters up to 4(n-1), bit index, rank) are
O(log n) bits, matching [14]'s bound; the reconstruction is simulator
bookkeeping as everywhere else (DESIGN.md substitution #1).
"""

from __future__ import annotations

from ..agents.observations import NULL_PORT
from ..agents.program import AgentProgram, Ctx, Registers, Routine, move, stay
from ..trees.automorphism import port_preserving_automorphism
from ..trees.basic_walk import TranscriptReconstructor, basic_walk_first_hit
from ..trees.center import find_center
from ..trees.tree import Tree

__all__ = ["baseline_agent", "baseline_program", "invariant_rank"]


def invariant_rank(tree: Tree, x: int, y: int, w: int) -> int:
    """Rank of node ``w`` under the symmetric-invariant key K (module doc).

    Keys are fully materialized nested codes (no interner), so they compare
    canonically: both agents agree on every node's rank even though each
    reconstructs the tree with private node numbering, and
    ``K(w) == K(w')`` iff ``w' ∈ {w, f(w)}`` for the unique port-preserving
    automorphism ``f``.
    """
    nested = {}
    for node in range(tree.n):
        nested[node] = tuple(
            sorted(
                (
                    _nested_marked(tree, x, node),
                    _nested_marked(tree, y, node),
                )
            )
        )
    distinct = sorted(set(nested.values()))
    return distinct.index(nested[w])


def _nested_marked(tree: Tree, root: int, mark: int) -> tuple:
    """Self-contained port-labeled marked rooted code (totally ordered)."""
    from ..trees.automorphism import _postorder

    out: dict[int, tuple] = {}
    for node, parent in _postorder(tree, root, None):
        entries = [1 if node == mark else 0]
        for nbr in tree.neighbors(node):
            if nbr == parent:
                continue
            entries.append((tree.port(node, nbr), tree.port(nbr, node), out[nbr]))
        out[node] = tuple(entries)
    return out[root]


def _rank_bits(rank: int, n: int) -> list[int]:
    """Fixed-width (``ceil(log2 n)``) big-endian bits of ``rank``."""
    width = max(1, (n - 1).bit_length())
    return [(rank >> (width - 1 - i)) & 1 for i in range(width)]


def baseline_program(start_degree: int, regs: Registers) -> Routine:
    """The arbitrary-delay agent as a register program."""
    ctx = Ctx(NULL_PORT, start_degree)
    if start_degree == 0:
        return  # one-node tree

    # ---- Phase 1: explore and reconstruct ----------------------------------
    rec = TranscriptReconstructor(ctx.degree)
    port = 0
    while not rec.closed:
        out = port
        yield from move(ctx, out)
        rec.feed(out, ctx.in_port, ctx.degree)
        port = (ctx.in_port + 1) % ctx.degree
    tree = rec.tree()  # home node = 0
    n = tree.n
    regs.declare("base_n", 2 * n)
    regs["base_n"] = n

    center = find_center(tree)
    if center.is_node:
        steps = basic_walk_first_hit(tree, 0, center.node)
        yield from _walk_steps(ctx, regs, int(steps), n)
        return  # wait forever at the central node

    x, y = center.edge  # type: ignore[misc]
    f = port_preserving_automorphism(tree)
    if f is None:
        # Labeled halves differ: canonical extremity by port + labeled code.
        from ..trees.automorphism import port_labeled_nested_code

        key_x = (tree.port(x, y), port_labeled_nested_code(tree, x, block=y))
        key_y = (tree.port(y, x), port_labeled_nested_code(tree, y, block=x))
        target = x if key_x < key_y else y
        steps = basic_walk_first_hit(tree, 0, target)
        yield from _walk_steps(ctx, regs, int(steps), n)
        return  # wait forever

    # ---- Phase 2: symmetric labeling — label-based multiplexing ------------
    rank = invariant_rank(tree, x, y, 0)  # own position is node 0
    regs.declare("base_rank", max(n - 1, 1))
    regs["base_rank"] = rank
    bits = [1, 1, 1, 0, 0, 0] + [b for bit in _rank_bits(rank, n) for b in (bit, 1 - bit)]
    block = 4 * (n - 1)  # two full tours, or an equally long wait
    regs.declare("base_bit_index", len(bits) - 1)
    regs.declare("base_block_step", max(block - 1, 1))
    while True:
        for idx, bit in enumerate(bits):
            regs["base_bit_index"] = idx
            if bit:
                for tour in range(2):
                    yield from _full_tour(ctx, regs, n)
            else:
                yield from _timed_wait(ctx, regs, block)


def _walk_steps(ctx: Ctx, regs: Registers, steps: int, n: int) -> Routine:
    """Basic walk of exactly ``steps`` T-steps from the current node."""
    regs.declare("base_walk", max(2 * (n - 1), 1))
    regs["base_walk"] = 0
    port = 0
    for k in range(steps):
        yield from move(ctx, port)
        regs["base_walk"] = k + 1
        port = (ctx.in_port + 1) % ctx.degree


def _full_tour(ctx: Ctx, regs: Registers, n: int) -> Routine:
    """One closed basic-walk tour (2(n-1) moves) from the home node."""
    regs.declare("base_block_step", max(2 * (n - 1), 1))
    port = 0
    for k in range(2 * (n - 1)):
        yield from move(ctx, port)
        regs["base_block_step"] = k
        port = (ctx.in_port + 1) % ctx.degree


def _timed_wait(ctx: Ctx, regs: Registers, rounds: int) -> Routine:
    regs.declare("base_block_step", max(rounds - 1, 1))
    for k in range(rounds):
        yield from stay(ctx)
        regs["base_block_step"] = k


def baseline_agent() -> AgentProgram:
    """The arbitrary-delay Θ(log n) baseline, simulator-ready."""
    return AgentProgram(baseline_program)
