"""The virtual rendezvous path P of Theorem 4.1 (§4.1, Sub-stage 2.2).

With ``u`` and ``v`` the two extremities (in T) of the central path C
(the path contracted into T''s central edge), the paper defines

    P = (B_u | C_{u->v} | B̄_v | C_{v->u})^{5ℓ} | (B_u | C_{u->v} | B̄_v)

where ``B_u`` is the closed walk of the instruction ``bw(2(ν-1))`` from
``u`` (a full basic-walk tour of T, projected onto T') and ``B̄_v`` the
closed walk of ``cbw(2(ν-1))`` from ``v``.  Claim 4.3: an agent standing at
*either* extremity that executes

    (bw(2(ν-1)), C, cbw(2(ν-1)), C)^{5ℓ}, bw(2(ν-1)), C, cbw(2(ν-1))

traverses P from its extremity to the other one.  Both directions of P are
thus realized by the *same* instruction sequence, which is what the
:class:`RendezvousPathNavigator` below executes — at speed ``1/p`` (idle
``p-1`` rounds before every edge) for the prime protocol.

The navigator's counters: a segment-repetition counter up to ``5ℓ`` and a
branching-arrival counter up to ``2(ν-1)`` — O(log ℓ) bits, as Theorem 4.1
requires.  The agent's *position on P* is never stored; it is implicit in
the physical position plus these counters.
"""

from __future__ import annotations

from ..agents.program import Ctx, Registers, Routine, move, stay

__all__ = ["RendezvousPathNavigator", "rendezvous_path_num_edges"]


def rendezvous_path_num_edges(n: int, nu: int, ell: int, chain_len: int, reps_factor: int = 5) -> int:
    """Number of T-edge traversals of one full traversal of P.

    ``chain_len`` is the number of T-edges of the central path C.  Each
    bw/cbw segment is a full doubled-edge tour of T: ``2(n-1)`` steps.
    Used by tests and the experiment harness (not by agents).
    """
    reps = reps_factor * ell
    segments_b = 2 * reps + 2  # bw/cbw segments
    segments_c = 2 * reps + 1  # C crossings
    return segments_b * 2 * (n - 1) + segments_c * chain_len


class RendezvousPathNavigator:
    """Executes one traversal of P from the current extremity of C.

    Parameters
    ----------
    nu:
        ν — the number of nodes of T' (known from Explo).
    ell:
        ℓ — the number of leaves (known from Explo's reconstruction).
    central_port:
        The port of the central path at *both* extremities (equal by the
        symmetry of T', which is the only case P is used in).
    reps_factor:
        The paper's 5 in ``5ℓ``; exposed for ablation benchmarks.
    """

    def __init__(self, nu: int, ell: int, central_port: int, reps_factor: int = 5) -> None:
        self.nu = nu
        self.ell = ell
        self.central_port = central_port
        self.reps = reps_factor * ell

    # -- public API ----------------------------------------------------------
    def traverse(self, ctx: Ctx, regs: Registers, speed: int) -> Routine:
        """Walk P once, ending at the other extremity of C."""
        regs.declare("path_rep", max(self.reps, 1))
        for r in range(self.reps):
            regs["path_rep"] = r
            yield from self._tour(ctx, regs, speed, delta=+1, first_port=0)
            yield from self._cross(ctx, regs, speed)
            yield from self._tour(ctx, regs, speed, delta=-1, first_port=ctx.in_port)
            yield from self._cross(ctx, regs, speed)
        yield from self._tour(ctx, regs, speed, delta=+1, first_port=0)
        yield from self._cross(ctx, regs, speed)
        yield from self._tour(ctx, regs, speed, delta=-1, first_port=ctx.in_port)

    # -- segments --------------------------------------------------------------
    def _tour(
        self, ctx: Ctx, regs: Registers, speed: int, delta: int, first_port: int
    ) -> Routine:
        """bw(2(ν-1)) (delta=+1) or cbw(2(ν-1)) (delta=-1) at speed 1/speed.

        Both are closed tours of T': the agent ends where it started.
        """
        total = 2 * (self.nu - 1)
        regs.declare("path_arrivals", max(total, 1))
        regs["path_arrivals"] = 0
        arrivals = 0
        port = first_port
        while arrivals < total:
            yield from stay(ctx, speed - 1)
            yield from move(ctx, port)
            if ctx.degree != 2:
                arrivals += 1
                regs["path_arrivals"] = arrivals
            port = (ctx.in_port + delta) % ctx.degree

    def _cross(self, ctx: Ctx, regs: Registers, speed: int) -> Routine:
        """Traverse the central path C to the other extremity.

        The pass-through port is computed from the entry port of the
        previous *move* — it must be captured before idling, because a null
        move resets the observation to ``(-1, d)`` (paper §2.1), exactly as
        a real automaton would have to hold the port in its state.
        """
        yield from stay(ctx, speed - 1)
        yield from move(ctx, self.central_port)
        while ctx.degree == 2:
            port = (ctx.in_port + 1) % 2
            yield from stay(ctx, speed - 1)
            yield from move(ctx, port)
