"""Public solving API: run the paper's algorithms on concrete instances.

This is the front door of the library:

>>> from repro.trees import complete_binary_tree
>>> from repro.core import solve
>>> result = solve(complete_binary_tree(3), 3, 11)
>>> result.outcome.met
True
>>> result.memory.declared >= 0  # bits the executed agent declared
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..agents.program import AgentProgram
from ..errors import InfeasibleRendezvousError
from ..sim.compiled import run_rendezvous_fast
from ..sim.engine import RendezvousOutcome
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.contraction import contract
from ..trees.tree import Tree
from .algorithm import rendezvous_agent
from .baseline import baseline_agent
from .memory import MemoryReport, memory_report
from .prime_walk import nth_prime
from .rendezvous_path import rendezvous_path_num_edges

__all__ = ["SolveResult", "solve", "solve_with_delay", "estimate_round_budget"]


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a rendezvous run plus the agent's memory account.

    The two agents are identical; ``memory`` reports the registers of the
    prototype's last clone executed (both clones declare the same bounds in
    a meeting run, so either is representative).
    """

    outcome: RendezvousOutcome
    memory: Optional[MemoryReport]
    feasible: bool

    @property
    def met(self) -> bool:
        return self.outcome.met


def estimate_round_budget(tree: Tree, max_outer: int = 8) -> int:
    """A generous upper estimate of the rounds the Thm 4.1 agent needs.

    Sums Stage 1 + Synchro + ``max_outer`` outer iterations, each costing
    (2nu - 1) inner iterations of bw/cbw plus prime(i) on P at the worst
    prime.  Used as the default simulator budget.
    """
    n = tree.n
    c = contract(tree)
    nu, ell = c.nu, tree.num_leaves
    chain = max(
        (len(path) - 1 for path in c.paths.values()), default=1
    )
    path_edges = rendezvous_path_num_edges(n, nu, ell, chain)
    stage1 = 4 * n
    synchro = (2 * nu + 2) * 2 * n
    budget = stage1 + synchro + 4 * n
    for i in range(1, max_outer + 1):
        prime_rounds = sum(2 * path_edges * nth_prime(k) for k in range(1, i + 1))
        inner = (2 * nu + 1) * (2 * 2 * n + prime_rounds)
        budget += inner + 2 * n + (2 * nu + 1) * 4 * n
    return budget


def solve(
    tree: Tree,
    start1: int,
    start2: int,
    *,
    max_rounds: Optional[int] = None,
    max_outer: int = 8,
    record_trace: bool = False,
    check_feasibility: bool = True,
    agent: Optional[AgentProgram] = None,
    engine: Optional[Callable] = None,
) -> SolveResult:
    """Run the Theorem 4.1 algorithm (simultaneous start, delay 0).

    Raises :class:`InfeasibleRendezvousError` for perfectly symmetrizable
    starts when ``check_feasibility`` (the paper's model only defines the
    task for feasible instances); pass ``check_feasibility=False`` to watch
    the agents run forever instead.

    ``engine`` overrides the simulation engine (default
    :func:`repro.sim.run_rendezvous_fast`): the scenario executors pass
    ``backend.run`` here so ``--backend`` reaches these runs too.  Note
    that a traced (lowered) engine returns unexecuted agent clones, so
    ``result.memory`` is ``None`` on that path — the experiments measure
    memory on solo replays instead.
    """
    feasible = not perfectly_symmetrizable(tree, start1, start2)
    if check_feasibility and not feasible:
        raise InfeasibleRendezvousError(
            f"nodes {start1} and {start2} are perfectly symmetrizable; "
            "no deterministic identical agents can rendezvous (Fact 1.1)"
        )
    prototype = agent if agent is not None else rendezvous_agent(max_outer=max_outer)
    budget = max_rounds if max_rounds is not None else estimate_round_budget(tree, max_outer)
    run = engine if engine is not None else run_rendezvous_fast
    outcome = run(
        tree,
        prototype,
        start1,
        start2,
        delay=0,
        max_rounds=budget,
        record_trace=record_trace,
    )
    return SolveResult(outcome, _memory_of(outcome), feasible)


def solve_with_delay(
    tree: Tree,
    start1: int,
    start2: int,
    delay: int,
    *,
    delayed: int = 2,
    max_rounds: Optional[int] = None,
    record_trace: bool = False,
    agent: Optional[AgentProgram] = None,
    engine: Optional[Callable] = None,
) -> SolveResult:
    """Run the arbitrary-delay baseline (Θ(log n) bits) under delay θ.

    ``engine`` as in :func:`solve`.
    """
    feasible = not perfectly_symmetrizable(tree, start1, start2)
    prototype = agent if agent is not None else baseline_agent()
    n = tree.n
    budget = max_rounds if max_rounds is not None else delay + 400 * n * n + 200 * n
    run = engine if engine is not None else run_rendezvous_fast
    outcome = run(
        tree,
        prototype,
        start1,
        start2,
        delay=delay,
        delayed=delayed,
        max_rounds=budget,
        record_trace=record_trace,
    )
    return SolveResult(outcome, _memory_of(outcome), feasible)


def _memory_of(outcome: RendezvousOutcome) -> Optional[MemoryReport]:
    """Memory of the executed agents: the max over the two clones (they
    declare identical bounds in full runs; early meetings can leave one
    clone behind the other, so take the wider account)."""
    reports = [
        memory_report(agent)
        for agent in outcome.agents
        if isinstance(agent, AgentProgram)
    ]
    if not reports:
        return None
    return max(reports, key=lambda r: r.declared)
