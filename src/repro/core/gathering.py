"""Gathering of k identical agents: the paper's "natural extension" (§1.3).

The two-agent machinery generalizes cleanly exactly when the agents can
deterministically agree on one node of the contraction T':

- T' has a central node  → every agent walks there and waits;
- T' has a central edge but is not symmetric → every agent walks to the
  canonical extremity and waits.

In both cases *any* number of identical agents gathers, with arbitrary
per-agent delays, because the target computation is position-independent
(the same invariants as Stage 2's easy cases in Theorem 4.1).

When T' is symmetric, two-agent rendezvous needs the full desynchronization
machinery, and for k > 2 agents even feasibility is a research question the
paper does not address (cf. its references [20, 28, 33, 37]); the gathering
agent here simply keeps running the Theorem 4.1 Stage-2 loop, which gathers
*pairs* that meet but is not guaranteed to collect all k agents.  The
public entry point reports which regime an instance falls in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.program import AgentProgram
from ..sim.multi import GatheringOutcome, run_gathering
from ..trees.automorphism import port_preserving_automorphism
from ..trees.center import find_center
from ..trees.contraction import contract
from ..trees.tree import Tree
from .algorithm import rendezvous_agent

__all__ = ["GatheringRegime", "classify_gathering", "gather"]


@dataclass(frozen=True)
class GatheringRegime:
    """Which fragment of the gathering problem an instance belongs to."""

    kind: str  # "central_node" | "central_edge_asymmetric" | "symmetric"
    guaranteed: bool  # gathering provably achieved by the provided agent

    @property
    def easy(self) -> bool:
        return self.kind in ("central_node", "central_edge_asymmetric")


def classify_gathering(tree: Tree) -> GatheringRegime:
    """Classify the tree's contraction for the gathering problem."""
    contraction = contract(tree)
    tprime = contraction.contracted
    if tprime.n == 1 or find_center(tprime).is_node:
        return GatheringRegime("central_node", True)
    if port_preserving_automorphism(tprime) is None:
        return GatheringRegime("central_edge_asymmetric", True)
    return GatheringRegime("symmetric", False)


def gather(
    tree: Tree,
    starts: Sequence[int],
    *,
    delays: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    max_outer: int = 8,
) -> tuple[GatheringOutcome, GatheringRegime]:
    """Gather ``len(starts)`` identical Theorem 4.1 agents.

    In the easy regimes this succeeds for any delays; in the symmetric
    regime the outcome is best-effort (see module docstring) — the regime
    object tells the caller which case applies.
    """
    regime = classify_gathering(tree)
    budget = max_rounds
    if budget is None:
        from .rendezvous import estimate_round_budget

        budget = estimate_round_budget(tree, max_outer)
    prototype: AgentProgram = rendezvous_agent(max_outer=max_outer)
    outcome = run_gathering(
        tree, prototype, starts, delays=delays, max_rounds=budget
    )
    return outcome, regime
