"""The Theorem 4.1 rendezvous agent: O(log ℓ + log log n) bits, delay 0.

Structure (paper §4.1):

Stage 1   Explo-bis from the initial position — learn T' (size ν, leaves ℓ,
          center type, basic-walk step counts, central-edge port).

Stage 2   * central node in T'                → walk there, wait forever;
          * central edge, T' not symmetric    → walk to the canonical
            extremity, wait forever;
          * central edge, T' symmetric        → the hard case:

            Sub-stage 2.1  Synchro (resynchronization).
            Sub-stage 2.2  walk to the farthest extremity ``v̂_far`` of the
            central path, then run the Figure-2 loop:

                for i = 1, 2, 3, ...:                      # outer loop
                    for j = 0 .. 2(ν-1):                   # 1st inner loop
                        bw(j); cbw(j)                      # desynchronizer
                        prime(i) on the rendezvous path P
                    cross the central path C
                    for j = 0 .. 2(ν-1):                   # 2nd inner loop
                        bw(j); cbw(j)                      # reset
                    cross C back

            The bw(j)/cbw(j) prefixes force the two agents' delays apart at
            some j unless the starts were perfectly symmetrizable
            (Lemma 4.3); once desynchronized by 0 < δ < |P|, prime(i) meets
            on P for some i = O(log n) (Lemma 4.1).

Every counter the agent stores is bounded by O(ℓ) or by the current prime
p = O(log(nℓ)) — the declared-register account is O(log ℓ + log log n) bits,
which the memory-scaling benchmark measures.
"""

from __future__ import annotations

from typing import Optional

from ..agents.observations import NULL_PORT
from ..agents.program import AgentProgram, Ctx, Registers, Routine, move
from .explo import (
    CENTRAL_EDGE_SYMMETRIC,
    explo_bis_routine,
    walk_to_branching_count,
)
from .prime_walk import prime_rendezvous_routine
from .rendezvous_path import RendezvousPathNavigator
from .synchro import synchro_routine

__all__ = ["rendezvous_agent", "rendezvous_program"]


def _bw_cbw_pair(ctx: Ctx, regs: Registers, j: int, bound: int) -> Routine:
    """Perform bw(j) then cbw(j): out and back, anchored at a branching node.

    For j = 0 this is a no-op (the paper's empty first iteration).
    """
    regs.declare("bwj_arrivals", max(bound, 1))
    regs["bwj_arrivals"] = 0
    if j == 0:
        return
    for delta in (+1, -1):
        arrivals = 0
        port = 0 if delta == +1 else ctx.in_port
        while arrivals < j:
            yield from move(ctx, port)
            if ctx.degree != 2:
                arrivals += 1
                regs["bwj_arrivals"] = arrivals
            port = (ctx.in_port + delta) % ctx.degree


def _cross_central(ctx: Ctx, central_port: int) -> Routine:
    """Traverse the central path C to its other extremity (speed 1)."""
    yield from move(ctx, central_port)
    while ctx.degree == 2:
        yield from move(ctx, (ctx.in_port + 1) % 2)


def rendezvous_program(
    start_degree: int,
    regs: Registers,
    reps_factor: int = 5,
    max_outer: Optional[int] = None,
) -> Routine:
    """The full Theorem 4.1 agent as a register program (generator)."""
    ctx = Ctx(NULL_PORT, start_degree)
    if start_degree == 0:
        return  # one-node tree: the agents already share the node

    # ---- Stage 1: Explo-bis ------------------------------------------------
    explo = yield from explo_bis_routine(ctx, regs)
    nu = explo.nu
    arrivals_bound = max(2 * (nu - 1), 1)

    if explo.kind != CENTRAL_EDGE_SYMMETRIC:
        # Easy cases: both agents compute the same target node of T' and
        # wait there forever (returning ends the program = wait forever).
        yield from walk_to_branching_count(
            ctx, regs, explo.steps_to_target, arrivals_bound
        )
        return

    # ---- Stage 2, symmetric contraction -------------------------------------
    # Sub-stage 2.1: resynchronization.
    yield from synchro_routine(ctx, regs, explo)

    # Sub-stage 2.2: go to the farthest extremity of the central path.
    yield from walk_to_branching_count(
        ctx, regs, explo.steps_to_target, arrivals_bound
    )
    assert explo.central_port is not None
    nav = RendezvousPathNavigator(nu, explo.ell, explo.central_port, reps_factor)

    # Entering the steady-state loop, drop the stage-1/2 working state the
    # agent never reads again: the navigation data lives in `nav` and the
    # kept registers, and a bounded-memory agent reuses its scratch space.
    # (Beyond hygiene, this makes two agents' machine states from
    # different starts *identical* once they run the same loop from the
    # same extremity — which is what lets the lowering subsystem share
    # their trace suffixes, and what the mirror argument of Fact 1.1
    # predicts: the loop's behavior depends only on (ν, ℓ, central port).)
    del explo
    regs.release("explo_steps_to_target")
    regs.release("walk_arrivals")
    regs.release("synchro_arrivals")

    i = 1
    while max_outer is None or i <= max_outer:
        regs.declare("outer_i", i)
        regs["outer_i"] = i
        regs.declare("inner_j", arrivals_bound)
        # First inner loop: desynchronize, then attempt rendezvous on P.
        for j in range(0, 2 * (nu - 1) + 1):
            regs["inner_j"] = j
            yield from _bw_cbw_pair(ctx, regs, j, arrivals_bound)
            yield from prime_rendezvous_routine(ctx, regs, nav, max_primes=i)
        # Reset: mirror the other agent's inner-loop work from the other
        # extremity, so the next outer iteration starts with the same delay
        # (Claim 4.4).
        yield from _cross_central(ctx, nav.central_port)
        for j in range(0, 2 * (nu - 1) + 1):
            regs["inner_j"] = j
            yield from _bw_cbw_pair(ctx, regs, j, arrivals_bound)
        yield from _cross_central(ctx, nav.central_port)
        i += 1


def rendezvous_agent(
    reps_factor: int = 5, max_outer: Optional[int] = None
) -> AgentProgram:
    """The Theorem 4.1 agent, ready for :func:`repro.sim.run_rendezvous`.

    Parameters
    ----------
    reps_factor:
        The constant 5 in the ``5ℓ`` repetitions of the rendezvous path P
        (exposed for the ablation benchmark).
    max_outer:
        Cap on the outer loop index ``i`` (``None`` = run forever, as the
        paper's agent does; the simulator's round budget bounds it).
    """
    return AgentProgram(rendezvous_program, reps_factor, max_outer)
