"""Procedures Explo and Explo-bis (Fact 2.1 and §4.1 of the paper).

``Explo(v)`` explores the tree from ``v``, returns to ``v``, and learns:

- the number of nodes;
- whether the tree has a central node, an asymmetric central edge, or a
  symmetric central edge (symmetric = a port-preserving automorphism);
- the minimum number of basic-walk steps from ``v`` to the relevant target
  node (central node / canonical extremity / *farthest* extremity), and
  which port at that extremity lies on the central edge.

``Explo-bis`` (the §4.1 modification) ignores degree-2 nodes: started at a
node ``v`` of degree 2, the agent first walks (basic-walk rule, i.e. pass
straight through) until it enters a leaf ``v̂ = vleaf``; otherwise
``v̂ = v``.  From ``v̂`` the behavior projected on the contraction T' is
exactly Explo on T'.

Implementation note (DESIGN.md substitution #1): the physical behavior is a
single closed basic walk of T (round-accurate, ``2(n-1)`` rounds from
``v̂``); the outputs of Fact 2.1 are derived by online reconstruction of the
walk transcript.  The reconstruction is simulator bookkeeping standing in
for the O(log m)-bit automaton of [27]; the agent's *charged* memory is the
declared registers (O(log ℓ) worth for Explo-bis, since all counters range
over T', which has ν <= 2ℓ-1 nodes).  What the rendezvous algorithm needs
from Explo — Fact 2.1's outputs plus a duration that is a deterministic
function of (tree, start) identical for both agents — holds exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..agents.program import Ctx, Registers, Routine, move
from ..errors import SimulationError
from ..trees.automorphism import port_labeled_nested_code, port_preserving_automorphism
from ..trees.basic_walk import TranscriptReconstructor, basic_walk_first_hit
from ..trees.center import find_center
from ..trees.contraction import Contraction, contract
from ..trees.tree import Tree

__all__ = [
    "CENTRAL_NODE",
    "CENTRAL_EDGE_ASYMMETRIC",
    "CENTRAL_EDGE_SYMMETRIC",
    "ExploResult",
    "explo_routine",
    "explo_bis_routine",
    "walk_to_branching_count",
]

CENTRAL_NODE = "central_node"
CENTRAL_EDGE_ASYMMETRIC = "central_edge_asymmetric"
CENTRAL_EDGE_SYMMETRIC = "central_edge_symmetric"


@dataclass(frozen=True)
class ExploResult:
    """Everything Fact 2.1 grants the agent after Explo(-bis).

    All node indices refer to the agent's own reconstruction, in which the
    start node ``v̂`` is node 0 of ``tree`` and node 0 of the contraction
    (``v̂`` has degree != 2, so it survives contraction).
    """

    tree: Tree  # the reconstructed T (node 0 = v̂)
    contraction: Contraction  # T' with maps back to the reconstruction
    kind: str  # one of the three CENTRAL_* constants
    steps_to_target: int  # T'-basic-walk steps from v̂ to the target node
    target: int  # T'-index of the target (central node or chosen extremity)
    central_port: Optional[int]  # port of the central edge at the target

    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def nu(self) -> int:
        """ν: number of nodes of T'."""
        return self.contraction.nu

    @property
    def ell(self) -> int:
        """ℓ: number of leaves (shared by T and T')."""
        return self.tree.num_leaves


def explo_routine(ctx: Ctx, regs: Registers) -> Routine:
    """Explo from a node of degree != 2 (or the one-node tree).

    Performs one closed basic walk (``2(n-1)`` rounds), ends back at the
    start node, and returns an :class:`ExploResult`.
    """
    if ctx.degree == 0:  # one-node tree: nothing to explore
        tree = Tree([[]], validate=False)
        return ExploResult(tree, contract(tree), CENTRAL_NODE, 0, 0, None)
    if ctx.degree == 2:
        raise SimulationError("Explo must start at a node of degree != 2; use Explo-bis")

    rec = TranscriptReconstructor(ctx.degree)
    port = 0
    while not rec.closed:
        out = port
        yield from move(ctx, out)
        rec.feed(out, ctx.in_port, ctx.degree)
        port = (ctx.in_port + 1) % ctx.degree
    tree = rec.tree()
    result = _analyze(tree)

    # Charge the agent for Fact 2.1's memory: counters over T'.  (For plain
    # Explo on a tree with no degree-2 nodes, T' = T and this is O(log n);
    # inside the rendezvous algorithm T has few leaves and this is O(log ℓ).)
    nu = result.contraction.nu
    regs.declare("explo_nu", max(2 * nu, 2))
    regs["explo_nu"] = nu
    regs.declare("explo_steps_to_target", max(2 * (nu - 1), 1))
    regs["explo_steps_to_target"] = result.steps_to_target
    if result.central_port is not None:
        regs.declare("explo_central_port", max(result.central_port, 1))
        regs["explo_central_port"] = result.central_port
    return result


def explo_bis_routine(ctx: Ctx, regs: Registers) -> Routine:
    """Explo-bis: Explo ignoring degree-2 nodes (§4.1).

    From a degree-2 start the agent first follows the basic walk (state
    ``s₀*``: pass straight through) until entering a *leaf*; that leaf is
    ``v̂``.  Then Explo runs from ``v̂``.
    """
    if ctx.degree == 2:
        # Leave through port 0 and pass through until a leaf is entered.
        yield from move(ctx, 0)
        while ctx.degree != 1:
            yield from move(ctx, (ctx.in_port + 1) % ctx.degree)
    return (yield from explo_routine(ctx, regs))


def walk_to_branching_count(ctx: Ctx, regs: Registers, count: int, bound: int) -> Routine:
    """Basic walk from the current node until ``count`` arrivals at nodes of
    degree != 2 (the walk that "reaches node x of T'", §4.1 Stage 2).

    ``bound`` is the declared register bound for the arrival counter
    (callers pass ``2(ν-1)`` so the counter costs O(log ℓ) bits).
    """
    regs.declare("walk_arrivals", max(bound, 1))
    regs["walk_arrivals"] = 0
    if count == 0:
        return
    port = 0
    seen = 0
    while True:
        yield from move(ctx, port)
        if ctx.degree != 2:
            seen += 1
            regs["walk_arrivals"] = seen
            if seen >= count:
                return
        port = (ctx.in_port + 1) % ctx.degree


def _analyze(tree: Tree) -> ExploResult:
    """Fact 2.1 post-processing on the reconstructed tree (start = node 0)."""
    contraction = contract(tree)
    tprime = contraction.contracted
    start = contraction.from_original[0]  # node 0 has degree != 2

    if tprime.n == 1:
        return ExploResult(tree, contraction, CENTRAL_NODE, 0, start, None)

    center = find_center(tprime)
    if center.is_node:
        steps = basic_walk_first_hit(tprime, start, center.node)
        return ExploResult(
            tree, contraction, CENTRAL_NODE, int(steps), center.node, None
        )

    x, y = center.edge  # type: ignore[misc]
    if port_preserving_automorphism(tprime) is not None:
        # Symmetric: target is the FARTHEST extremity from the start
        # (Fact 2.1's "why the farthest" footnote; distances from v̂ to the
        # two extremities differ by parity, so there is no tie).
        dist = tprime.bfs_distances(start)
        target = x if dist[x] > dist[y] else y
        kind = CENTRAL_EDGE_SYMMETRIC
    else:
        # Asymmetric: both agents must pick the SAME extremity.  The key is
        # invariant under the agents' private node numberings: the central
        # edge's port at the extremity, then the port-labeled code of the
        # extremity's half.  Equal keys would imply a port-preserving
        # automorphism, contradicting asymmetry.
        key_x = (tprime.port(x, y), port_labeled_nested_code(tprime, x, block=y))
        key_y = (tprime.port(y, x), port_labeled_nested_code(tprime, y, block=x))
        if key_x == key_y:  # pragma: no cover - excluded by asymmetry
            raise SimulationError("asymmetric central edge produced equal keys")
        target = x if key_x < key_y else y
        kind = CENTRAL_EDGE_ASYMMETRIC

    steps = basic_walk_first_hit(tprime, start, target)
    other = y if target == x else x
    return ExploResult(
        tree, contraction, kind, int(steps), target, tprime.port(target, other)
    )
