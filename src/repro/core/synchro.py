"""Procedure Synchro (§4.1, Sub-stage 2.1): resynchronization.

After Stage 1 each agent sits at its ``v̂``.  Synchro performs a closed
basic walk of T (stopping after ``2(ν-1)`` T'-edge traversals, i.e.
branching-node arrivals), inserting a full ``Explo-bis(w)`` at every visited
branching node *except the last one* (the final return to ``v̂``).

Because the two agents perform identical multisets of actions (in different
orders), they finish Synchro with delay exactly ``β = |L - L'|`` where L, L'
are the basic-walk lengths from the true starts to the respective ``v̂``
(Claim 4.2).  In this implementation Explo-bis from a branching node always
takes ``2(n-1)`` rounds, which makes Claim 4.2 hold with room to spare; the
insertion structure is kept anyway for fidelity to the paper's protocol.
"""

from __future__ import annotations

from ..agents.program import Ctx, Registers, Routine, move
from .explo import ExploResult, explo_bis_routine

__all__ = ["synchro_routine"]


def synchro_routine(ctx: Ctx, regs: Registers, explo: ExploResult) -> Routine:
    """Run Synchro from ``v̂`` (current position, degree != 2); ends at ``v̂``.

    ``explo`` is the agent's own Stage-1 result (provides ν).
    """
    nu = explo.nu
    total = 2 * (nu - 1)
    if total == 0:  # T' is a single node: nothing to synchronize over
        return
    regs.declare("synchro_arrivals", total)
    regs["synchro_arrivals"] = 0
    port = 0  # the basic walk leaves v̂ by port 0
    arrivals = 0
    while arrivals < total:
        yield from move(ctx, port)
        while ctx.degree == 2:  # pass through the contracted paths
            yield from move(ctx, (ctx.in_port + 1) % 2)
        arrivals += 1
        regs["synchro_arrivals"] = arrivals
        resume = (ctx.in_port + 1) % ctx.degree
        if arrivals < total:
            # Insert Explo-bis(w); the current node w has degree != 2, so
            # this is a closed Explo taking 2(n-1) rounds and ending at w.
            yield from explo_bis_routine(ctx, regs)
        port = resume
