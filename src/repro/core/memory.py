"""Memory accounting for the rendezvous agents.

The paper measures agent memory in bits (⌈log₂ K⌉ for a K-state automaton).
Register programs (:class:`repro.agents.program.Registers`) declare every
bounded counter; this module turns those declarations into the reports the
experiments print, and provides the closed-form reference curves
(the O(log ℓ + log log n) upper bound and the Θ(log n) arbitrary-delay
bound) the measured values are compared against in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..agents.program import AgentProgram

__all__ = [
    "MemoryReport",
    "memory_report",
    "measure_memory",
    "upper_bound_bits",
    "loglog_bits",
    "log_bits",
]


@dataclass(frozen=True)
class MemoryReport:
    """Bits used by one agent in one execution.

    ``declared`` sums the declared register widths (the analytic cost);
    ``used`` sums the widths required by the peak values actually stored
    (always <= declared).  ``registers`` maps register name to
    ``(declared bound, peak value)``.
    """

    declared: int
    used: int
    registers: dict[str, tuple[int, int]]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rows = "\n".join(
            f"  {name:<24} bound={bound:<10} peak={peak}"
            for name, (bound, peak) in self.registers.items()
        )
        return f"MemoryReport(declared={self.declared}b, used={self.used}b)\n{rows}"


def memory_report(agent: AgentProgram) -> MemoryReport:
    """Extract the memory report of an executed agent program."""
    return MemoryReport(
        declared=agent.registers.bits_declared(),
        used=agent.registers.bits_used(),
        registers=agent.registers.report(),
    )


def measure_memory(tree, start: int, agent: AgentProgram, rounds: int) -> MemoryReport:
    """Drive one agent *alone* on ``tree`` for ``rounds`` rounds and report
    its registers.

    Rendezvous runs can end with a lucky early meeting before the agent has
    declared its counters; the paper's memory measure is what the agent
    must be *equipped with* on the instance, so the experiments measure a
    solo execution over a representative horizon (Stage 1 + Synchro + a few
    outer iterations) instead.
    """
    from ..agents.observations import NULL_PORT, STAY, resolve_action

    clone = agent.clone()
    pos = start
    action = resolve_action(clone.start(tree.degree(pos)), tree.degree(pos))
    for _ in range(rounds):
        if clone.finished:
            break
        if action == STAY:
            obs = (NULL_PORT, tree.degree(pos))
        else:
            pos, in_port = tree.move(pos, action)
            obs = (in_port, tree.degree(pos))
        action = resolve_action(clone.step(*obs), tree.degree(pos))
    return memory_report(clone)


def log_bits(x: int) -> int:
    """⌈log₂(x+1)⌉ with a floor of 1 — bits to hold a counter up to x."""
    return max(1, math.ceil(math.log2(x + 1)))


def upper_bound_bits(n: int, ell: int, c_ell: int = 8, c_loglog: int = 3) -> int:
    """A concrete O(log ℓ + log log n) reference curve.

    The constants reflect the handful of O(log ℓ)-bounded counters (ν,
    inner j, path repetitions, branching arrivals, Synchro, Explo) and the
    O(log log n)-bounded ones (prime value, prime index, outer index) the
    Theorem 4.1 agent declares.  Used only for plotting/benchmark context,
    never by agents.
    """
    return c_ell * log_bits(max(ell, 2)) + c_loglog * log_bits(
        log_bits(max(n, 2))
    )


def loglog_bits(n: int) -> int:
    """Θ(log log n) reference curve (Thm 4.2 lower bound shape)."""
    return log_bits(log_bits(max(n, 2)))
