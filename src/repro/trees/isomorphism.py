"""Explicit tree isomorphisms (beyond yes/no canonical-code tests).

:mod:`repro.trees.automorphism` answers *whether* two structures are
isomorphic; this module produces the *witness mapping*, both unlabeled and
port-preserving.  Used by tests (round-trip witnesses under renumbering),
by the Thm 4.3 tooling (aligning colliding side trees), and exposed as
public API for users poking at instances.

Algorithm: rooted AHU codes with an interner, then a top-down matching that
pairs children by code (unlabeled: greedy within code-equal groups; ports:
children are matched port-by-port, so the map is forced).
"""

from __future__ import annotations

from typing import Optional

from .automorphism import CodeInterner
from .center import find_center
from .tree import Tree

__all__ = ["find_rooted_isomorphism", "find_isomorphism", "find_port_isomorphism"]


def _match_down(
    t1: Tree,
    r1: int,
    b1: Optional[int],
    t2: Tree,
    r2: int,
    b2: Optional[int],
    codes1: dict[int, int],
    codes2: dict[int, int],
    with_ports: bool,
) -> Optional[dict[int, int]]:
    mapping = {r1: r2}
    stack = [(r1, -1 if b1 is None else b1, r2, -1 if b2 is None else b2)]
    while stack:
        a, pa, b, pb = stack.pop()
        kids_a = [c for c in t1.neighbors(a) if c != pa]
        kids_b = [c for c in t2.neighbors(b) if c != pb]
        if len(kids_a) != len(kids_b):
            return None
        if with_ports:
            # ports force the pairing
            by_port_b = {t2.port(b, c): c for c in kids_b}
            for ca in kids_a:
                cb = by_port_b.get(t1.port(a, ca))
                if cb is None or codes1[ca] != codes2[cb]:
                    return None
                if t1.port(ca, a) != t2.port(cb, b):
                    return None
                mapping[ca] = cb
                stack.append((ca, a, cb, b))
        else:
            # group children by code and pair within groups arbitrarily
            pool: dict[int, list[int]] = {}
            for cb in kids_b:
                pool.setdefault(codes2[cb], []).append(cb)
            for ca in kids_a:
                group = pool.get(codes1[ca])
                if not group:
                    return None
                cb = group.pop()
                mapping[ca] = cb
                stack.append((ca, a, cb, b))
    return mapping


def find_rooted_isomorphism(
    t1: Tree,
    r1: int,
    t2: Tree,
    r2: int,
    *,
    with_ports: bool = False,
    block1: Optional[int] = None,
    block2: Optional[int] = None,
) -> Optional[dict[int, int]]:
    """A rooted isomorphism ``t1 -> t2`` mapping ``r1`` to ``r2``, or None.

    ``block1``/``block2`` restrict to the halves away from those neighbors
    (central-edge halves).  With ``with_ports`` the mapping must preserve
    port numbers (then it is unique if it exists).
    """
    interner = CodeInterner()
    codes1: dict[int, int] = {}
    codes2: dict[int, int] = {}
    from .automorphism import _postorder

    for tree, root, block, codes in (
        (t1, r1, block1, codes1),
        (t2, r2, block2, codes2),
    ):
        for node, parent in _postorder(tree, root, block):
            children = []
            for nbr in tree.neighbors(node):
                if nbr == parent or (node == root and nbr == block):
                    continue
                if with_ports:
                    children.append(
                        (tree.port(node, nbr), tree.port(nbr, node), codes[nbr])
                    )
                else:
                    children.append((codes[nbr],))
            if not with_ports:
                children.sort()
            codes[node] = interner.intern((0, tuple(children)))
    if codes1[r1] != codes2[r2]:
        return None
    return _match_down(t1, r1, block1, t2, r2, block2, codes1, codes2, with_ports)


def find_isomorphism(t1: Tree, t2: Tree) -> Optional[dict[int, int]]:
    """An unlabeled isomorphism ``t1 -> t2``, or None.

    Roots both trees at their centers; for central edges both orientations
    of the extremity pairing are tried.
    """
    if t1.n != t2.n:
        return None
    c1, c2 = find_center(t1), find_center(t2)
    if c1.is_node != c2.is_node:
        return None
    if c1.is_node:
        return find_rooted_isomorphism(t1, c1.node, t2, c2.node)
    (x1, y1), (x2, y2) = c1.edge, c2.edge  # type: ignore[misc]
    for rx, ry in ((x2, y2), (y2, x2)):
        left = find_rooted_isomorphism(t1, x1, t2, rx, block1=y1, block2=ry)
        right = find_rooted_isomorphism(t1, y1, t2, ry, block1=x1, block2=rx)
        if left is not None and right is not None:
            return {**left, **right}
    return None


def find_port_isomorphism(t1: Tree, t2: Tree) -> Optional[dict[int, int]]:
    """A port-preserving isomorphism ``t1 -> t2``, or None (unique if any)."""
    if t1.n != t2.n:
        return None
    c1, c2 = find_center(t1), find_center(t2)
    if c1.is_node != c2.is_node:
        return None
    if c1.is_node:
        return find_rooted_isomorphism(t1, c1.node, t2, c2.node, with_ports=True)
    (x1, y1), (x2, y2) = c1.edge, c2.edge  # type: ignore[misc]
    for rx, ry in ((x2, y2), (y2, x2)):
        if t1.port(x1, y1) != t2.port(rx, ry) or t1.port(y1, x1) != t2.port(ry, rx):
            continue
        left = find_rooted_isomorphism(
            t1, x1, t2, rx, with_ports=True, block1=y1, block2=ry
        )
        right = find_rooted_isomorphism(
            t1, y1, t2, ry, with_ports=True, block1=x1, block2=rx
        )
        if left is not None and right is not None:
            return {**left, **right}
    return None
