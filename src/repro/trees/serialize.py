"""Serialization: JSON round-trips for trees and rendezvous instances.

Lets users save adversarial instances (the lower-bound constructions are
expensive to recompute for large agents), exchange labeled trees between
runs, and pin down regression cases.  The JSON schema is versioned and
deliberately dumb: the full ``port_to_nbr`` table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import InvalidTreeError
from .tree import Tree

__all__ = ["tree_to_json", "tree_from_json", "Instance", "instance_to_json", "instance_from_json"]

_SCHEMA = "repro.tree.v1"
_INSTANCE_SCHEMA = "repro.instance.v1"


def tree_to_json(tree: Tree, indent: Optional[int] = None) -> str:
    """Serialize a port-labeled tree to a JSON string."""
    payload = {
        "schema": _SCHEMA,
        "n": tree.n,
        "port_to_nbr": [list(tree.neighbors(u)) for u in range(tree.n)],
    }
    return json.dumps(payload, indent=indent)


def tree_from_json(text: str) -> Tree:
    """Parse a tree serialized by :func:`tree_to_json` (validating)."""
    payload = json.loads(text)
    if payload.get("schema") != _SCHEMA:
        raise InvalidTreeError(f"unknown tree schema {payload.get('schema')!r}")
    rows = payload["port_to_nbr"]
    if len(rows) != payload["n"]:
        raise InvalidTreeError("node count mismatch in serialized tree")
    return Tree(rows)


@dataclass(frozen=True)
class Instance:
    """A rendezvous instance: tree + starts + delay regime."""

    tree: Tree
    start1: int
    start2: int
    delay: int = 0
    delayed: int = 2
    note: str = ""

    def validate(self) -> None:
        if not (0 <= self.start1 < self.tree.n and 0 <= self.start2 < self.tree.n):
            raise InvalidTreeError("instance starts outside the tree")
        if self.delay < 0 or self.delayed not in (1, 2):
            raise InvalidTreeError("bad delay specification")


def instance_to_json(instance: Instance, indent: Optional[int] = None) -> str:
    instance.validate()
    payload: dict[str, Any] = {
        "schema": _INSTANCE_SCHEMA,
        "tree": json.loads(tree_to_json(instance.tree)),
        "start1": instance.start1,
        "start2": instance.start2,
        "delay": instance.delay,
        "delayed": instance.delayed,
        "note": instance.note,
    }
    return json.dumps(payload, indent=indent)


def instance_from_json(text: str) -> Instance:
    payload = json.loads(text)
    if payload.get("schema") != _INSTANCE_SCHEMA:
        raise InvalidTreeError(f"unknown instance schema {payload.get('schema')!r}")
    tree = tree_from_json(json.dumps(payload["tree"]))
    instance = Instance(
        tree=tree,
        start1=payload["start1"],
        start2=payload["start2"],
        delay=payload.get("delay", 0),
        delayed=payload.get("delayed", 2),
        note=payload.get("note", ""),
    )
    instance.validate()
    return instance
