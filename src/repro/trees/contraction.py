"""Contraction of a tree: suppress degree-2 nodes (the paper's T').

Theorem 4.1's algorithm operates on the *contraction* T' of the input tree
T: every maximal path of degree-2 nodes joining two nodes of degree != 2 is
replaced by a single edge whose two ports are the ports of the path's first
and last edges at its two branching endpoints.

If T has ℓ leaves then T' has at most 2ℓ - 1 nodes (paper, §4.1) — this is
why agent counters over T' only cost O(log ℓ) bits.

The :class:`Contraction` object keeps both directions of the correspondence:
T'-node -> T-node, and each T'-edge -> the full T-path it contracts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidTreeError
from .tree import Tree

__all__ = ["Contraction", "contract"]


@dataclass(frozen=True)
class Contraction:
    """The contraction T' of a tree T together with the node/edge maps.

    Attributes
    ----------
    original:
        The tree T that was contracted.
    contracted:
        T' as a :class:`Tree` on its own node range ``0 .. nu-1``.
    to_original:
        ``to_original[a]`` is the T-node represented by T'-node ``a``.
    from_original:
        Partial inverse: maps T-nodes of degree != 2 to their T'-index.
    paths:
        ``paths[(a, p)]`` is the full T-path (list of T-node ids, inclusive
        of both branching endpoints) represented by the T'-edge leaving
        T'-node ``a`` through port ``p``.
    """

    original: Tree
    contracted: Tree
    to_original: tuple[int, ...]
    from_original: dict[int, int]
    paths: dict[tuple[int, int], tuple[int, ...]]

    @property
    def nu(self) -> int:
        """Number of nodes of T' (the paper's ν)."""
        return self.contracted.n

    def path_length(self, a: int, p: int) -> int:
        """Number of T-edges of the path behind T'-edge ``(a, p)``."""
        return len(self.paths[(a, p)]) - 1

    def degree2_nodes_on(self, a: int, p: int) -> tuple[int, ...]:
        """The interior (degree-2) T-nodes of the contracted path."""
        return self.paths[(a, p)][1:-1]


def _follow_chain(tree: Tree, start: int, port: int) -> tuple[int, int, list[int]]:
    """Walk from ``start`` through ``port`` across degree-2 nodes.

    Returns ``(end, in_port, path)`` where ``end`` is the first node of
    degree != 2 encountered, ``in_port`` its entry port, and ``path`` the
    node sequence from ``start`` to ``end`` inclusive.
    """
    path = [start]
    node, in_port = tree.move(start, port)
    path.append(node)
    while tree.degree(node) == 2:
        node, in_port = tree.move(node, 1 - in_port)
        path.append(node)
    return node, in_port, path


def contract(tree: Tree) -> Contraction:
    """Compute the contraction T' of ``tree``.

    Every node of degree != 2 of T becomes a node of T'; ports at those
    nodes are inherited unchanged (contraction preserves branching degrees).
    A path on >= 2 nodes (line) contracts to a single edge between its
    endpoints; a single node is its own contraction.
    """
    keep = [u for u in range(tree.n) if tree.degree(u) != 2]
    if not keep:
        raise InvalidTreeError("a tree always has nodes of degree != 2")  # pragma: no cover
    from_original = {u: i for i, u in enumerate(keep)}
    rows: list[list[int]] = []
    paths: dict[tuple[int, int], tuple[int, ...]] = {}
    for i, u in enumerate(keep):
        row: list[int] = []
        for p in range(tree.degree(u)):
            end, _in_port, chain = _follow_chain(tree, u, p)
            row.append(from_original[end])
            paths[(i, p)] = tuple(chain)
        rows.append(row)
    contracted = Tree(rows, validate=False) if len(keep) > 1 else Tree([[]], validate=False)
    return Contraction(
        original=tree,
        contracted=contracted,
        to_original=tuple(keep),
        from_original=from_original,
        paths=paths,
    )
