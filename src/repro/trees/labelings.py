"""Port labelings: canonical, random, exhaustive, and edge-colored lines.

In the paper the port labeling is chosen by an *adversary*; Definition 1.1
demands that agents rendezvous *for any port labeling*.  The test-suite and
experiment drivers therefore need to sweep labelings:

- :func:`random_relabel` — a uniformly random port labeling;
- :func:`all_labelings` — exhaustive enumeration for small trees;
- :func:`edge_colored_line` — the proper 2-edge-colorings of a line used by
  both lower-bound constructions (Thm 3.1 and Thm 4.2), where both endpoints
  of an edge carry the same number, and the Thm 3.1 variant that puts port 0
  on the central edge.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator
from typing import Optional

from ..errors import InvalidLabelingError
from .tree import Tree

__all__ = [
    "random_relabel",
    "all_labelings",
    "count_labelings",
    "edge_colored_line",
    "thm31_line_labeling",
    "identity_perms",
]


def identity_perms(tree: Tree) -> list[list[int]]:
    """The identity port permutation for every node of ``tree``."""
    return [list(range(tree.degree(u))) for u in range(tree.n)]


def random_relabel(tree: Tree, rng: Optional[random.Random] = None) -> Tree:
    """Apply an independent uniformly random port permutation at every node."""
    rng = rng or random.Random()  # repro-lint: disable=RPR003 -- documented convenience default: callers needing reproducibility pass a seeded Random; every solver/scenario path does
    perms = []
    for u in range(tree.n):
        perm = list(range(tree.degree(u)))
        rng.shuffle(perm)
        perms.append(perm)
    return tree.with_ports(perms)


def count_labelings(tree: Tree) -> int:
    """Number of distinct port labelings: prod over nodes of deg(u)!."""
    import math

    out = 1
    for u in range(tree.n):
        out *= math.factorial(tree.degree(u))
    return out


def all_labelings(tree: Tree, limit: Optional[int] = None) -> Iterator[Tree]:
    """Yield the tree under every possible port labeling.

    The count is ``prod_u deg(u)!`` which explodes quickly; pass ``limit``
    to stop early, or keep trees small (exhaustive testing uses n <= 7).
    """
    per_node = [list(itertools.permutations(range(tree.degree(u)))) for u in range(tree.n)]
    produced = 0
    for combo in itertools.product(*per_node):
        yield tree.with_ports([list(p) for p in combo])
        produced += 1
        if limit is not None and produced >= limit:
            return


def edge_colored_line(num_nodes: int, first_color: int = 0) -> Tree:
    """A path whose port labeling is a proper 2-edge-coloring.

    Edge ``i`` (between nodes ``i`` and ``i+1``) gets color ``(first_color +
    i) mod 2`` and *both* of its ports carry that color, as in the Thm 4.2
    construction ("ports at the two extremities of an edge colored i are set
    to i").  Degree-1 endpoints keep port 0 regardless (a node of degree 1
    has only port 0), which matches the paper's convention that ports at a
    node of degree d are ``0 .. d-1``: at an endpoint the single edge has
    port 0 even if its color is 1 — the *interior* labeling is what the
    construction relies on, and the endpoints are where agents turn around.

    Concretely: at an interior node ``i``, the edge to ``i-1`` has port equal
    to the color of edge ``i-1``, and the edge to ``i+1`` has port equal to
    the color of edge ``i``.  Proper coloring makes those differ, so the port
    assignment is a valid permutation of {0, 1}.
    """
    if num_nodes < 2:
        raise InvalidLabelingError("edge-colored line needs >= 2 nodes")
    if first_color not in (0, 1):
        raise InvalidLabelingError("first_color must be 0 or 1")
    ports: dict[tuple[int, int], int] = {}
    for i in range(num_nodes - 1):
        color = (first_color + i) % 2
        ports[(i, i + 1)] = color
        ports[(i + 1, i)] = color
    # Fix up the endpoints: degree-1 nodes only have port 0.
    ports[(0, 1)] = 0
    ports[(num_nodes - 1, num_nodes - 2)] = 0
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return Tree.from_edges(num_nodes, edges, ports=ports)


def thm31_line_labeling(num_nodes: int) -> Tree:
    """The Thm 3.1 line: port 0 on the central edge, 2-edge-colored outward.

    ``num_nodes`` must be even + 0? The construction uses a line of *odd
    length* ``8(K+1)+1`` (even node count) whose **central edge** e gets
    number 0 at both extremities, and every other edge gets the same number
    0 or 1 at both ends, alternating so each node sees a permutation.

    Returns the labeled line with nodes numbered left to right.
    """
    if num_nodes < 2 or num_nodes % 2 != 0:
        raise InvalidLabelingError(
            "Thm 3.1 line has an odd number of edges, i.e. an even node count"
        )
    num_edges = num_nodes - 1
    mid = num_edges // 2  # index of the central edge (0-based), odd length
    colors = [0] * num_edges
    for i in range(num_edges):
        # Color alternates moving away from the central edge, which is 0.
        colors[i] = abs(i - mid) % 2
    ports: dict[tuple[int, int], int] = {}
    for i in range(num_edges):
        ports[(i, i + 1)] = colors[i]
        ports[(i + 1, i)] = colors[i]
    ports[(0, 1)] = 0
    ports[(num_nodes - 1, num_nodes - 2)] = 0
    edges = [(i, i + 1) for i in range(num_edges)]
    return Tree.from_edges(num_nodes, edges, ports=ports)
