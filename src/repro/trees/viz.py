"""Visualization helpers: ASCII rendering and Graphviz/DOT export.

The renderings show the structure *plus the port labeling* — the ports are
the whole story in this model, so every edge annotation is
``parent_port/child_port``.  Used by the examples and priceless when
debugging adversarial constructions.
"""

from __future__ import annotations

from typing import Optional

from .center import find_center
from .tree import Tree

__all__ = ["ascii_tree", "to_dot", "annotate_instance"]


def ascii_tree(tree: Tree, root: Optional[int] = None, marks: Optional[dict[int, str]] = None) -> str:
    """Render the tree as indented ASCII art rooted at ``root``.

    ``marks`` maps node ids to short labels shown next to them (e.g.
    ``{u: "agent1", v: "agent2"}``).  Default root: the central node, or
    the smaller extremity of the central edge.
    """
    marks = marks or {}
    if root is None:
        center = find_center(tree)
        root = center.node if center.is_node else center.edge[0]  # type: ignore[index]

    lines: list[str] = []

    def label(node: int) -> str:
        extra = f"  <{marks[node]}>" if node in marks else ""
        return f"({node}) deg={tree.degree(node)}{extra}"

    # Iterative DFS (paths can be thousands of nodes deep).
    stack: list[tuple[int, int, str, str, bool]] = [(root, -1, "", "", True)]
    while stack:
        node, parent, prefix, edge_note, last = stack.pop()
        connector = "" if parent == -1 else ("└─" if last else "├─")
        lines.append(f"{prefix}{connector}{edge_note}{label(node)}")
        children = [c for c in tree.neighbors(node) if c != parent]
        child_prefix = prefix + ("" if parent == -1 else ("  " if last else "│ "))
        for idx, child in reversed(list(enumerate(children))):
            note = f"[{tree.port(node, child)}/{tree.port(child, node)}] "
            stack.append((child, node, child_prefix, note, idx == len(children) - 1))
    return "\n".join(lines)


def to_dot(
    tree: Tree,
    marks: Optional[dict[int, str]] = None,
    name: str = "tree",
) -> str:
    """Graphviz DOT source with port numbers as head/tail labels."""
    marks = marks or {}
    out = [f"graph {name} {{", "  node [shape=circle];"]
    for v in range(tree.n):
        attrs = []
        if v in marks:
            attrs.append(f'xlabel="{marks[v]}"')
            attrs.append("style=filled")
            attrs.append("fillcolor=lightblue")
        attr_str = f" [{', '.join(attrs)}]" if attrs else ""
        out.append(f"  {v}{attr_str};")
    for u, v in tree.edges():
        out.append(
            f'  {u} -- {v} [taillabel="{tree.port(u, v)}", '
            f'headlabel="{tree.port(v, u)}"];'
        )
    out.append("}")
    return "\n".join(out)


def annotate_instance(tree: Tree, start1: int, start2: int) -> str:
    """ASCII rendering with the two agents' start positions marked."""
    return ascii_tree(tree, marks={start1: "agent 1", start2: "agent 2"})
