"""Tree automorphisms, symmetry, and perfect symmetrizability.

This module implements the feasibility theory of §1 and §2 of the paper:

- *topological symmetry* of two nodes (an automorphism of the unlabeled tree
  carries one to the other);
- *symmetry with respect to a port labeling* (the automorphism additionally
  preserves port numbers);
- *perfect symmetrizability* (Definition 1.2): there EXISTS a port labeling
  and a labeling-preserving automorphism carrying one node to the other —
  Fact 1.1 says rendezvous is solvable iff the initial positions are NOT
  perfectly symmetrizable.

Structural facts used (proved in the paper / classical):

1. A nontrivial port-preserving automorphism ``f`` of a labeled tree has no
   fixed node: if ``f(w) = w`` then ``f`` fixes every port at ``w``, hence
   every neighbor of ``w``, hence (by connectivity) ``f = id``.
2. Consequently the tree must have a central *edge* ``{x, y}`` with
   ``f(x) = y``; since ``f^2`` fixes ``x``, ``f`` is an involution swapping
   the two halves of the tree across the central edge.  There is therefore
   at most ONE nontrivial port-preserving automorphism (propagation from
   ``x -> y`` is forced port by port).
3. Perfect symmetrizability of ``(u, v)``: the tree has a central edge
   ``{x, y}``, the two halves are isomorphic as unlabeled rooted trees, and
   some rooted isomorphism of the halves maps ``u`` to ``v`` — i.e. the
   AHU code of (half of u, rooted at its extremity, marked at u) equals the
   code of (half of v, rooted at the other extremity, marked at v).  Any
   such isomorphism can be upgraded to a port-preserving automorphism by
   choosing the labeling accordingly.

All codes are computed with an iterative AHU scheme interning subtree codes
to integers (no recursion; linear-ish time), so the functions are safe on
paths of thousands of nodes.
"""

from __future__ import annotations

from typing import Optional

from .center import find_center
from .tree import Tree

__all__ = [
    "CodeInterner",
    "rooted_code",
    "canonical_form",
    "are_topologically_symmetric",
    "port_preserving_automorphism",
    "are_symmetric_for_labeling",
    "is_symmetric_labeling",
    "perfectly_symmetrizable",
    "has_symmetrizing_labeling",
]


class CodeInterner:
    """Maps structured subtree descriptors to small integers.

    Codes produced with the *same* interner are comparable across calls;
    codes from different interners are not.
    """

    def __init__(self) -> None:
        self._table: dict[tuple, int] = {}

    def intern(self, key: tuple) -> int:
        code = self._table.get(key)
        if code is None:
            code = len(self._table)
            self._table[key] = code
        return code

    def __len__(self) -> int:
        return len(self._table)


def _postorder(tree: Tree, root: int, block: Optional[int] = None) -> list[tuple[int, int]]:
    """(node, parent) pairs in post-order (children before parents).

    ``block`` excludes one neighbor of ``root`` — used to restrict the walk
    to one half of the tree across the central edge.
    """
    order: list[tuple[int, int]] = []
    stack: list[tuple[int, int]] = [(root, -1)]
    while stack:
        node, parent = stack.pop()
        order.append((node, parent))
        for nbr in tree.neighbors(node):
            if nbr == parent or (node == root and nbr == block):
                continue
            stack.append((nbr, node))
    order.reverse()
    return order


def rooted_code(
    tree: Tree,
    root: int,
    mark: Optional[int] = None,
    *,
    interner: Optional[CodeInterner] = None,
    block: Optional[int] = None,
    with_ports: bool = False,
) -> int:
    """AHU canonical code of ``tree`` rooted at ``root``.

    Parameters
    ----------
    mark:
        Optional distinguished node; two rooted marked trees have equal codes
        iff an isomorphism maps root to root and mark to mark.
    interner:
        Shared interner for cross-call comparability.
    block:
        Exclude the subtree behind the edge ``{root, block}`` — restricts the
        code to one half across a central edge.
    with_ports:
        When true, child codes are ordered by the port number of the edge to
        the child instead of sorted; equal codes then mean *port-preserving*
        rooted isomorphism.
    """
    if interner is None:  # NB: `or` would discard an *empty* interner (len 0)
        interner = CodeInterner()
    codes: dict[int, int] = {}
    for node, parent in _postorder(tree, root, block):
        children: list[tuple] = []
        for nbr in tree.neighbors(node):
            if nbr == parent or (node == root and nbr == block):
                continue
            if with_ports:
                children.append((tree.port(node, nbr), tree.port(nbr, node), codes[nbr]))
            else:
                children.append((codes[nbr],))
        if not with_ports:
            children.sort()
        marked = 1 if node == mark else 0
        codes[node] = interner.intern((marked, tuple(children)))
    return codes[root]


def canonical_form(tree: Tree) -> tuple:
    """A canonical invariant of the *unlabeled* tree (isomorphism class).

    Rooted at the central node, or the sorted pair of half-codes at the
    central edge.  Two trees are isomorphic iff their canonical forms are
    equal *when computed with a shared interner*; to make the result
    self-contained across calls, the code is rebuilt as a nested tuple.
    """
    center = find_center(tree)
    if center.is_node:
        return ("node", _nested_code(tree, center.node, None))
    x, y = center.edge  # type: ignore[misc]
    cx = _nested_code(tree, x, y)
    cy = _nested_code(tree, y, x)
    return ("edge", tuple(sorted((cx, cy))))


def _nested_code(tree: Tree, root: int, block: Optional[int]) -> tuple:
    """Fully materialized nested-tuple AHU code (self-contained, comparable)."""
    interner = CodeInterner()
    codes: dict[int, int] = {}
    nested: dict[int, tuple] = {}
    for node, parent in _postorder(tree, root, block):
        child_nodes = [
            nbr
            for nbr in tree.neighbors(node)
            if nbr != parent and not (node == root and nbr == block)
        ]
        pairs = sorted((codes[c], nested[c]) for c in child_nodes)
        codes[node] = interner.intern((0, tuple(p[0] for p in pairs)))
        nested[node] = tuple(p[1] for p in pairs)
    return nested[root]


def port_labeled_nested_code(tree: Tree, root: int, block: Optional[int] = None) -> tuple:
    """Self-contained *port-labeled* rooted code (comparable across trees).

    Children appear in port order and each entry is the triple
    ``(port at node, port at child, child code)``, so two codes are equal
    iff a port-preserving rooted isomorphism exists — independent of node
    numbering and of any interner.  Codes are totally ordered (all entries
    at matching positions have the same shape), which the Theorem 4.1 agent
    uses to pick a canonical extremity of an asymmetric central edge.
    """
    nested: dict[int, tuple] = {}
    for node, parent in _postorder(tree, root, block):
        entries = []
        for nbr in tree.neighbors(node):
            if nbr == parent or (node == root and nbr == block):
                continue
            entries.append((tree.port(node, nbr), tree.port(nbr, node), nested[nbr]))
        entries.sort(key=lambda e: e[0])  # port order (ports are unique per node)
        nested[node] = tuple(entries)
    return nested[root]


def are_topologically_symmetric(tree: Tree, u: int, v: int) -> bool:
    """Does some automorphism of the unlabeled tree map ``u`` to ``v``?

    Any automorphism preserves the center.  Rooting at the central node
    (resp. either extremity of the central edge) reduces the question to
    equality of marked rooted codes.
    """
    if u == v:
        return True
    center = find_center(tree)
    interner = CodeInterner()
    if center.is_node:
        c = center.node
        return rooted_code(tree, c, u, interner=interner) == rooted_code(
            tree, c, v, interner=interner
        )
    x, y = center.edge  # type: ignore[misc]
    cu_x = rooted_code(tree, x, u, interner=interner)
    cv_x = rooted_code(tree, x, v, interner=interner)
    if cu_x == cv_x:  # an automorphism fixing x (and y)
        return True
    cu_y = rooted_code(tree, y, u, interner=interner)
    cv_y = rooted_code(tree, y, v, interner=interner)
    return cu_x == cv_y and cu_y == cv_x  # an automorphism swapping x and y


def port_preserving_automorphism(tree: Tree) -> Optional[dict[int, int]]:
    """The unique nontrivial port-preserving automorphism, or ``None``.

    Such an automorphism must swap the extremities of the central edge and
    is then forced everywhere by following equal port numbers, so we build
    it by parallel BFS from the two extremities and check consistency.
    """
    if tree.n < 2:
        return None
    center = find_center(tree)
    if center.is_node:
        return None
    x, y = center.edge  # type: ignore[misc]
    if tree.degree(x) != tree.degree(y):
        return None
    # The central edge must carry the same port number at both extremities
    # for f to preserve ports (f maps the central edge to itself).
    if tree.port(x, y) != tree.port(y, x):
        return None
    stride, deg, move_to, move_in = tree.flat_move_tables()
    mapping: dict[int, int] = {x: y, y: x}
    stack = [(x, y)]
    while stack:
        a, b = stack.pop()
        if deg[a] != deg[b]:
            return None
        for p in range(deg[a]):
            na = move_to[a * stride + p]
            nb = move_to[b * stride + p]
            # Entry ports must also agree: port of {a,na} at na must equal
            # port of {b,nb} at nb.
            if move_in[a * stride + p] != move_in[b * stride + p]:
                return None
            if na in mapping:
                if mapping[na] != nb:
                    return None
                continue
            if nb in mapping and mapping[nb] != na:
                return None
            mapping[na] = nb
            mapping[nb] = na
            if na != b:  # don't re-expand the swapped pair
                stack.append((na, nb))
    return mapping


def is_symmetric_labeling(tree: Tree) -> bool:
    """Is the labeled tree *symmetric* (§2.2): nontrivial port-preserving
    automorphism exists?"""
    return port_preserving_automorphism(tree) is not None


def are_symmetric_for_labeling(tree: Tree, u: int, v: int) -> bool:
    """Are ``u`` and ``v`` symmetric with respect to the tree's own labeling?

    True iff the (unique) nontrivial port-preserving automorphism exists and
    maps ``u`` to ``v``.  With simultaneous start, rendezvous under THIS
    labeling is feasible iff this returns False (cf. §1, citing [14]).
    """
    if u == v:
        return True
    f = port_preserving_automorphism(tree)
    return f is not None and f.get(u) == v


def has_symmetrizing_labeling(tree: Tree) -> bool:
    """Can SOME labeling make the tree symmetric?

    Iff the tree has a central edge whose two halves are isomorphic as
    unlabeled rooted trees.
    """
    center = find_center(tree)
    if center.is_node:
        return False
    x, y = center.edge  # type: ignore[misc]
    interner = CodeInterner()
    return rooted_code(tree, x, block=y, interner=interner) == rooted_code(
        tree, y, block=x, interner=interner
    )


def perfectly_symmetrizable(tree: Tree, u: int, v: int) -> bool:
    """Definition 1.2: is there a labeling + preserving automorphism with f(u)=v?

    By the structural facts in the module docstring this holds iff the tree
    has a central edge ``{x, y}``, and the half containing ``u`` rooted at
    its extremity and marked at ``u`` is isomorphic (unlabeled, rooted,
    marked) to the half containing ``v`` rooted at the other extremity and
    marked at ``v`` — with ``u`` and ``v`` in different halves.

    Fact 1.1: rendezvous (quantified over all labelings) is solvable from
    ``(u, v)`` iff this returns ``False``.
    """
    if u == v:
        return True  # the identity automorphism, with any labeling
    center = find_center(tree)
    if center.is_node:
        return False
    x, y = center.edge  # type: ignore[misc]
    half_x = set(tree.subtree_nodes(x, y))
    u_in_x = u in half_x
    v_in_x = v in half_x
    if u_in_x == v_in_x:
        return False  # a symmetrizing automorphism swaps the halves
    if not u_in_x:
        u, v = v, u  # now u is in the x-half, v in the y-half
    interner = CodeInterner()
    return rooted_code(tree, x, u, block=y, interner=interner) == rooted_code(
        tree, y, v, block=x, interner=interner
    )
