"""Basic walks and counter basic walks (§2.2 of the paper).

The *basic walk* from ``v``: leave ``v`` by port 0 and, perpetually, upon
entering a degree-``d`` node by port ``i``, leave by port ``(i+1) mod d``.
In a tree this is an Euler tour of the doubled edges: after exactly
``2(n-1)`` steps it is back at ``v`` having traversed every edge once in each
direction.

The *counter basic walk* undoes it: leave by the port just used to enter, and
upon entering by port ``i`` leave by ``(i-1) mod d``.

Two structural facts this module exploits (and the tests verify):

- at a degree-2 node both rules reduce to "pass through" (``(i±1) mod 2 =
  1-i``), so a basic walk in T *projects onto* a basic walk in the
  contraction T' — the key to the paper's Explo-bis;
- during a basic walk, leaving through a port never traversed before always
  discovers a brand-new node (the walk is a DFS-like Euler tour), so the
  walk transcript determines the port-labeled tree exactly and *closure is
  detectable online* — this powers our Explo implementation
  (see DESIGN.md substitution #1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from .tree import Tree

__all__ = [
    "WalkStep",
    "basic_walk",
    "counter_basic_walk",
    "basic_walk_until_branching",
    "counter_basic_walk_until_branching",
    "basic_walk_first_hit",
    "TranscriptReconstructor",
]


@dataclass(frozen=True)
class WalkStep:
    """One step of a walk: the edge taken and the arrival observation."""

    from_node: int
    out_port: int
    to_node: int
    in_port: int


def basic_walk(
    tree: Tree,
    start: int,
    steps: Optional[int] = None,
    *,
    start_port: int = 0,
) -> list[WalkStep]:
    """The basic walk from ``start``; default length ``2(n-1)`` (full closure).

    ``start_port`` generalizes the first exit port (the paper uses this when
    a walk resumes from a known port, e.g. re-entering the central path).
    """
    if steps is None:
        steps = 2 * (tree.n - 1)
    out: list[WalkStep] = []
    node = start
    port = start_port % max(tree.degree(start), 1)
    for _ in range(steps):
        nxt, in_port = tree.move(node, port)
        out.append(WalkStep(node, port, nxt, in_port))
        node = nxt
        port = (in_port + 1) % tree.degree(node)
    return out


def counter_basic_walk(
    tree: Tree,
    start: int,
    entry_port: int,
    steps: int,
) -> list[WalkStep]:
    """The counter basic walk: first exit by ``entry_port`` (the port through
    which the current node was entered), then ``(i-1) mod d`` forever."""
    out: list[WalkStep] = []
    node = start
    port = entry_port % max(tree.degree(start), 1)
    for _ in range(steps):
        nxt, in_port = tree.move(node, port)
        out.append(WalkStep(node, port, nxt, in_port))
        node = nxt
        port = (in_port - 1) % tree.degree(node)
    return out


def _walk_until_branching(
    tree: Tree,
    start: int,
    first_port: int,
    count: int,
    delta: int,
) -> list[WalkStep]:
    """Shared engine for bw(j)/cbw(j): stop after ``count`` arrivals at nodes
    of degree != 2 (arrivals counted with multiplicity, per the paper's
    'until j nodes of degree different from 2 have been visited')."""
    if count == 0:
        return []
    out: list[WalkStep] = []
    node = start
    port = first_port % max(tree.degree(start), 1)
    seen = 0
    guard = 0
    limit = 2 * tree.n * (count + 1) + 4  # generous; walks cannot stall
    while True:
        nxt, in_port = tree.move(node, port)
        out.append(WalkStep(node, port, nxt, in_port))
        node = nxt
        if tree.degree(node) != 2:
            seen += 1
            if seen >= count:
                return out
        port = (in_port + delta) % tree.degree(node)
        guard += 1
        if guard > limit:  # pragma: no cover - defensive
            raise SimulationError("branching-bounded walk failed to terminate")


def basic_walk_until_branching(
    tree: Tree, start: int, count: int, *, start_port: int = 0
) -> list[WalkStep]:
    """The paper's ``bw(j)``: basic walk until ``j`` branching-node arrivals."""
    return _walk_until_branching(tree, start, start_port, count, +1)


def counter_basic_walk_until_branching(
    tree: Tree, start: int, entry_port: int, count: int
) -> list[WalkStep]:
    """The paper's ``cbw(j)`` (counter basic walk, branching-bounded)."""
    return _walk_until_branching(tree, start, entry_port, count, -1)


def basic_walk_first_hit(tree: Tree, start: int, target: int) -> Optional[int]:
    """Minimum number of basic-walk steps from ``start`` to reach ``target``.

    ``None`` if the full closed walk (length ``2(n-1)``) never visits the
    target — impossible in a tree, but kept total for safety.
    """
    if start == target:
        return 0
    for k, step in enumerate(basic_walk(tree, start), start=1):
        if step.to_node == target:
            return k
    return None  # pragma: no cover - a closed basic walk visits all nodes


class TranscriptReconstructor:
    """Online reconstruction of a port-labeled tree from a basic walk.

    Feed the observation of each step — ``(in_port, degree)`` of the node
    just entered — together with the known exit port.  Because an
    untraversed port always leads to an unvisited node, the partial tree is
    reconstructed exactly; :attr:`closed` flips to True precisely when the
    walk has completed the doubled-edge Euler tour (back at the start with
    every discovered port traversed).

    The reconstruction is *simulator bookkeeping* standing in for the
    O(log n)-memory automaton of Fact 2.1 (cf. DESIGN.md, substitution #1);
    agents built on top of it are charged the analytic memory cost, not the
    transcript size.
    """

    def __init__(self, start_degree: int) -> None:
        self._rows: list[list[int]] = [[-1] * start_degree]
        self._pos = 0
        self._steps = 0

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def num_nodes(self) -> int:
        return len(self._rows)

    @property
    def position(self) -> int:
        """Reconstructed index of the walker's current node (start = 0)."""
        return self._pos

    @property
    def closed(self) -> bool:
        """True once the walk provably returned to start having seen it all."""
        return (
            self._steps > 0
            and self._pos == 0
            and all(v != -1 for row in self._rows for v in row)
        )

    def feed(self, out_port: int, in_port: int, degree: int) -> None:
        """Record one step: left current node by ``out_port``, entered a node
        by ``in_port`` whose degree is ``degree``."""
        u = self._pos
        row = self._rows[u]
        if not (0 <= out_port < len(row)):
            raise SimulationError(f"reconstruction: bad out_port {out_port}")
        v = row[out_port]
        if v == -1:
            # Fresh edge => fresh node (DFS property of the basic walk).
            v = len(self._rows)
            self._rows.append([-1] * degree)
            row[out_port] = v
            self._rows[v][in_port] = u
        else:
            if self._rows[v][in_port] != u or len(self._rows[v]) != degree:
                raise SimulationError("reconstruction: inconsistent transcript")
        self._pos = v
        self._steps += 1

    def tree(self) -> Tree:
        """The reconstructed tree (only valid once :attr:`closed`)."""
        if not self.closed:
            raise SimulationError("walk transcript is not closed yet")
        return Tree(self._rows)
