"""Central node / central edge of a tree by iterated leaf stripping.

Section 2.2 of the paper: repeatedly remove all leaves; the process stops at
either a single node (the *central node*) or a single edge (the *central
edge*).  This is the classical 1- or 2-center of a tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .tree import Tree

__all__ = ["Center", "find_center"]


@dataclass(frozen=True)
class Center:
    """The result of leaf stripping.

    Exactly one of ``node`` / ``edge`` is set.  ``layers[u]`` is the round at
    which node ``u`` was stripped (its "onion layer"), with central nodes
    carrying the maximum layer.
    """

    node: Optional[int]
    edge: Optional[tuple[int, int]]
    layers: tuple[int, ...]

    @property
    def is_node(self) -> bool:
        return self.node is not None

    @property
    def is_edge(self) -> bool:
        return self.edge is not None


def find_center(tree: Tree) -> Center:
    """Compute the central node or central edge of ``tree``.

    Linear time: peel degree-1 nodes layer by layer until one node or two
    adjacent nodes remain.  For ``n == 1`` the single node is central; for
    ``n == 2`` the single edge is central.
    """
    n = tree.n
    if n == 1:
        return Center(node=0, edge=None, layers=(0,))
    degree = tree.degrees()
    layer = [0] * n
    current = [u for u in range(n) if degree[u] == 1]
    removed = 0
    depth = 0
    remaining = n
    while remaining > 2:
        depth += 1
        nxt: list[int] = []
        for u in current:
            layer[u] = depth - 1
            removed += 1
        remaining = n - removed
        for u in current:
            for v in tree.neighbors(u):
                degree[v] -= 1
                if degree[v] == 1:
                    nxt.append(v)
        # Note: a neighbor can reach degree 1 only once, so no duplicates.
        current = nxt
    for u in current:
        layer[u] = depth
    if remaining == 1:
        return Center(node=current[0], edge=None, layers=tuple(layer))
    a, b = sorted(current)
    return Center(node=None, edge=(a, b), layers=tuple(layer))
