"""Side trees and two-sided trees (Theorem 4.3's Ω(log ℓ) construction).

For ℓ = 2i, a *side tree* is built from an (i+1)-node path with a
distinguished *root* endpoint: to every internal node of the path attach
either a single new leaf ("short hair") or a 2-node path ("long hair" —
a degree-2 node with a leaf below).  The i-1 binary choices give
``2^(i-1) = 2^(ℓ/2 - 1)`` pairwise non-isomorphic rooted side trees, each
with maximum degree 3 and i leaves (counting the far path end).

A *two-sided tree* joins the roots of two side trees by a path with ``m``
added internal nodes (``m`` even; ``m + 1`` edges): ℓ leaves total, max
degree 3.  The joining path carries the paper's labeling: both ports of its
central edge are 0, every other joining edge has the same label 0/1 at both
ends (a proper 2-edge-coloring radiating from the central edge).  The
agents' initial positions are the joining-path nodes adjacent to the two
roots.

Node layout of :func:`two_sided_tree`: side tree 1 occupies ids
``0 .. n1-1`` (root = 0), side tree 2 ids ``n1 .. n1+n2-1`` (root = n1),
the ``m`` joining nodes follow, ordered from side 1 to side 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConstructionError
from .tree import Tree

__all__ = [
    "SideTree",
    "side_tree",
    "all_side_trees",
    "num_side_trees",
    "root_edge_color",
    "TwoSided",
    "two_sided_tree",
]


@dataclass(frozen=True)
class SideTree:
    """A rooted, port-labeled side tree.

    ``tree`` is the standalone side tree (root = node 0); ``root_port_up``
    is the port number *reserved* at the root for the future joining edge
    (the side tree itself only uses the root's other port).
    """

    tree: Tree
    choices: tuple[int, ...]  # 0 = short hair, 1 = long hair, per internal node
    root_port_up: int

    @property
    def size(self) -> int:
        return self.tree.n

    @property
    def num_leaves(self) -> int:
        return self.tree.num_leaves


def root_edge_color(m: int) -> int:
    """Color (= both-end port label) of the joining edge at each root.

    The joining path has ``m + 1`` edges; its central edge is labeled 0 and
    labels alternate outward, so the outermost edges (root to first joining
    node) carry ``(m/2) mod 2``.
    """
    if m < 0 or m % 2 != 0:
        raise ConstructionError("the number of added joining nodes m must be even >= 0")
    return (m // 2) % 2


def side_tree(i: int, choices: tuple[int, ...], root_port_up: int = 1) -> SideTree:
    """Build one side tree for ℓ = 2i from the given hair choices.

    ``choices`` has one 0/1 entry per internal path node (i-1 entries).
    The spine is ``0 (root) - 1 - ... - i``; hairs hang off nodes 1..i-1.
    Ports: along the spine each node uses ports in construction order; the
    root's spine port is ``1 - root_port_up`` so that ``root_port_up`` stays
    free for the joining edge.
    """
    if i < 2:
        raise ConstructionError("side trees need i >= 2 (ℓ = 2i >= 4)")
    if len(choices) != i - 1:
        raise ConstructionError(f"need {i - 1} hair choices, got {len(choices)}")
    if root_port_up not in (0, 1):
        raise ConstructionError("root_port_up must be 0 or 1")

    edges: list[tuple[int, int]] = [(k, k + 1) for k in range(i)]
    nxt = i + 1
    for k, choice in enumerate(choices, start=1):
        if choice == 0:  # short hair: a single leaf
            edges.append((k, nxt))
            nxt += 1
        else:  # long hair: degree-2 node + leaf
            edges.append((k, nxt))
            edges.append((nxt, nxt + 1))
            nxt += 2
    # Canonical ports (edge-listing order), then free up the root's port.
    tree = Tree.from_edges(nxt, edges)
    if root_port_up == 0:
        # The root currently has its single (spine) edge on port 0; in the
        # two-sided tree the joining edge must take port 0 instead, so move
        # the spine edge to port 1 when the root is embedded (handled by
        # two_sided_tree); standalone, the root keeps its one port.
        pass
    return SideTree(tree=tree, choices=tuple(choices), root_port_up=root_port_up)


def num_side_trees(i: int) -> int:
    return 2 ** (i - 1)


def all_side_trees(i: int, root_port_up: int = 1) -> list[SideTree]:
    """All ``2^(i-1)`` side trees for ℓ = 2i, in binary-counter order."""
    out = []
    for mask in range(2 ** (i - 1)):
        choices = tuple((mask >> b) & 1 for b in range(i - 1))
        out.append(side_tree(i, choices, root_port_up))
    return out


@dataclass(frozen=True)
class TwoSided:
    """A two-sided tree with the paper's start positions.

    ``u`` and ``v`` are the joining-path nodes adjacent to the two roots
    (``root1 = 0``, ``root2 = n1``); for ``m == 0`` the joining path has no
    added nodes and ``u``/``v`` fall back to the roots themselves.
    """

    tree: Tree
    root1: int
    root2: int
    u: int
    v: int
    m: int


def two_sided_tree(side1: SideTree, side2: SideTree, m: int) -> TwoSided:
    """Join two side trees by a path with ``m`` (even) internal nodes.

    The joining path's port labeling follows the paper: central edge 0/0,
    every edge the same label at both extremities, alternating outward; the
    side trees keep their internal canonical labelings, with each root's
    joining port as reserved by ``root_port_up``.
    """
    if m % 2 != 0 or m < 2:
        raise ConstructionError("m must be even and >= 2 (u, v must exist)")
    n1, n2 = side1.size, side2.size
    base = n1 + n2
    join = list(range(base, base + m))  # joining nodes, side1 -> side2

    edges: list[tuple[int, int]] = []
    ports: dict[tuple[int, int], int] = {}

    def add_side(side: SideTree, offset: int) -> None:
        t = side.tree
        for a, b in t.edges():
            edges.append((a + offset, b + offset))
            pa, pb = t.port(a, b), t.port(b, a)
            # The root's spine edge may need to move off the reserved port.
            if a == 0 and side.root_port_up == pa:
                pa = 1 - side.root_port_up
            if b == 0 and side.root_port_up == pb:
                pb = 1 - side.root_port_up
            ports[(a + offset, b + offset)] = pa
            ports[(b + offset, a + offset)] = pb

    add_side(side1, 0)
    add_side(side2, n1)

    # Joining path: root1 - join[0] - ... - join[m-1] - root2.
    chain = [0] + join + [n1]
    num_edges = len(chain) - 1  # == m + 1, odd
    mid = num_edges // 2
    for idx in range(num_edges):
        a, b = chain[idx], chain[idx + 1]
        color = abs(idx - mid) % 2
        edges.append((a, b))
        pa = side1.root_port_up if a == 0 else color
        pb = side2.root_port_up if b == n1 else color
        ports[(a, b)] = pa
        ports[(b, a)] = pb

    tree = Tree.from_edges(base + m, edges, ports=ports)
    return TwoSided(tree=tree, root1=0, root2=n1, u=join[0], v=join[-1], m=m)
