"""Port-labeled anonymous tree substrate.

Everything the paper's model needs from the environment side: trees with
local port numbers, tree families, labelings, centers, contractions,
automorphism/symmetry theory, and basic-walk primitives.
"""

from .automorphism import (
    are_symmetric_for_labeling,
    are_topologically_symmetric,
    canonical_form,
    has_symmetrizing_labeling,
    is_symmetric_labeling,
    perfectly_symmetrizable,
    port_labeled_nested_code,
    port_preserving_automorphism,
    rooted_code,
)
from .basic_walk import (
    TranscriptReconstructor,
    WalkStep,
    basic_walk,
    basic_walk_first_hit,
    basic_walk_until_branching,
    counter_basic_walk,
    counter_basic_walk_until_branching,
)
from .builders import (
    all_trees,
    complete_kary_tree,
    lobster,
    binomial_tree,
    broom,
    caterpillar,
    complete_binary_tree,
    double_broom,
    double_star,
    line,
    random_bounded_degree_tree,
    random_tree,
    spider,
    star,
    subdivide,
)
from .center import Center, find_center
from .contraction import Contraction, contract
from .isomorphism import (
    find_isomorphism,
    find_port_isomorphism,
    find_rooted_isomorphism,
)
from .labelings import (
    all_labelings,
    count_labelings,
    edge_colored_line,
    random_relabel,
    thm31_line_labeling,
)
from .serialize import (
    Instance,
    instance_from_json,
    instance_to_json,
    tree_from_json,
    tree_to_json,
)
from .tree import Tree
from .viz import annotate_instance, ascii_tree, to_dot

__all__ = [
    "Tree",
    "ascii_tree",
    "to_dot",
    "annotate_instance",
    "Instance",
    "tree_to_json",
    "tree_from_json",
    "instance_to_json",
    "instance_from_json",
    "WalkStep",
    "TranscriptReconstructor",
    "Center",
    "Contraction",
    "find_center",
    "contract",
    "basic_walk",
    "basic_walk_first_hit",
    "basic_walk_until_branching",
    "counter_basic_walk",
    "counter_basic_walk_until_branching",
    "line",
    "star",
    "spider",
    "caterpillar",
    "broom",
    "double_broom",
    "complete_binary_tree",
    "complete_kary_tree",
    "lobster",
    "binomial_tree",
    "double_star",
    "random_tree",
    "random_bounded_degree_tree",
    "all_trees",
    "subdivide",
    "all_labelings",
    "count_labelings",
    "random_relabel",
    "edge_colored_line",
    "thm31_line_labeling",
    "canonical_form",
    "rooted_code",
    "are_topologically_symmetric",
    "are_symmetric_for_labeling",
    "is_symmetric_labeling",
    "has_symmetrizing_labeling",
    "perfectly_symmetrizable",
    "port_labeled_nested_code",
    "port_preserving_automorphism",
    "find_isomorphism",
    "find_port_isomorphism",
    "find_rooted_isomorphism",
]
