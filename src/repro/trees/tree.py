"""Port-labeled anonymous trees.

This module defines :class:`Tree`, the fundamental substrate of the whole
reproduction.  A tree in the sense of the paper is an undirected, connected,
acyclic graph whose nodes are *anonymous* (agents cannot read node names) but
whose edges carry *local port numbers*: the edges incident to a node ``v`` of
degree ``d`` are labeled with distinct ports ``0 .. d-1`` at ``v``.  Each
undirected edge ``{u, v}`` therefore has two independent port numbers, one at
``u`` and one at ``v`` (the paper's "port labeling is local").

Node identifiers ``0 .. n-1`` exist only for the benefit of the simulator and
the test-suite; agent code never observes them.

The representation is a tuple-of-tuples ``port_to_nbr`` where
``port_to_nbr[u][p]`` is the neighbor reached from ``u`` through port ``p``.
This single structure encodes both the topology and the port labeling, and it
is what every walk primitive consumes.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from ..errors import InvalidPortError, InvalidTreeError

__all__ = ["Tree"]


class Tree:
    """An immutable port-labeled tree on nodes ``0 .. n-1``.

    Parameters
    ----------
    port_to_nbr:
        ``port_to_nbr[u][p]`` is the node reached from ``u`` via port ``p``.
        The length of ``port_to_nbr[u]`` is the degree of ``u``.
    validate:
        When true (the default) the constructor checks that the structure is
        a connected, acyclic, symmetric graph and that the implied port
        numbers are a permutation of ``0 .. deg-1`` at every node.

    Notes
    -----
    The structure is immutable: all mutating operations return new trees.
    Equality compares the *labeled* structure (same topology and same port
    labeling with identical node numbering); use
    :func:`repro.trees.automorphism.canonical_form` for isomorphism tests.
    """

    # __weakref__ lets caches (e.g. the solo-trace cache in
    # repro.sim.traced) key on trees without pinning them in memory.
    __slots__ = (
        "_port_to_nbr", "_nbr_to_port", "_n", "_hash", "_degrees", "_flat",
        "__weakref__",
    )

    def __init__(self, port_to_nbr: Sequence[Sequence[int]], *, validate: bool = True):
        self._port_to_nbr: tuple[tuple[int, ...], ...] = tuple(
            tuple(row) for row in port_to_nbr
        )
        self._n = len(self._port_to_nbr)
        self._hash: Optional[int] = None
        # Lazily-built caches.  Transformations (with_ports, renumber_nodes)
        # return new Tree objects, so each labeling carries its own tables.
        self._degrees: Optional[tuple[int, ...]] = None
        self._flat: Optional[tuple[int, tuple[int, ...], tuple[int, ...], tuple[int, ...]]] = None
        # Reverse map: _nbr_to_port[u][v] == the port at u of edge {u, v}.
        self._nbr_to_port: tuple[dict[int, int], ...] = tuple(
            {v: p for p, v in enumerate(row)} for row in self._port_to_nbr
        )
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]],
        ports: Optional[dict[tuple[int, int], int]] = None,
    ) -> "Tree":
        """Build a tree from an edge list.

        Parameters
        ----------
        n:
            Number of nodes.
        edges:
            Iterable of undirected edges ``(u, v)``.
        ports:
            Optional map from *directed* edge ``(u, v)`` to the port number
            of ``{u, v}`` at ``u``.  When omitted, ports are assigned at each
            node in the order edges are listed (a valid canonical labeling).
        """
        adj: list[list[int]] = [[] for _ in range(n)]
        edge_list = list(edges)
        if ports is None:
            for u, v in edge_list:
                adj[u].append(v)
                adj[v].append(u)
        else:
            deg: list[int] = [0] * n
            for u, v in edge_list:
                deg[u] += 1
                deg[v] += 1
            adj = [[-1] * deg[u] for u in range(n)]
            for u, v in edge_list:
                try:
                    pu = ports[(u, v)]
                    pv = ports[(v, u)]
                except KeyError as exc:  # pragma: no cover - defensive
                    raise InvalidPortError(
                        f"missing port assignment for edge {{{u}, {v}}}"
                    ) from exc
                if not (0 <= pu < deg[u]) or adj[u][pu] != -1:
                    raise InvalidPortError(
                        f"bad or duplicate port {pu} at node {u} (degree {deg[u]})"
                    )
                if not (0 <= pv < deg[v]) or adj[v][pv] != -1:
                    raise InvalidPortError(
                        f"bad or duplicate port {pv} at node {v} (degree {deg[v]})"
                    )
                adj[u][pu] = v
                adj[v][pv] = u
        return cls(adj)

    @classmethod
    def from_parent_array(cls, parents: Sequence[Optional[int]]) -> "Tree":
        """Build a tree from ``parents[i] = parent of i`` (root has ``None``).

        Ports are assigned in node order: canonical labeling.
        """
        n = len(parents)
        edges = [(i, p) for i, p in enumerate(parents) if p is not None]
        if len(edges) != n - 1:
            raise InvalidTreeError("parent array must define exactly n-1 edges")
        return cls.from_edges(n, edges)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self._n
        if n == 0:
            raise InvalidTreeError("a tree must have at least one node")
        edge_count = 0
        for u, row in enumerate(self._port_to_nbr):
            if len(set(row)) != len(row):
                raise InvalidTreeError(f"node {u} lists a neighbor twice")
            for p, v in enumerate(row):
                if not (0 <= v < n):
                    raise InvalidTreeError(f"node {u} port {p} points outside the tree")
                if v == u:
                    raise InvalidTreeError(f"self-loop at node {u}")
                if u not in self._nbr_to_port[v]:
                    raise InvalidTreeError(
                        f"edge {{{u}, {v}}} is not symmetric (missing at {v})"
                    )
                edge_count += 1
        if edge_count != 2 * (n - 1):
            raise InvalidTreeError(
                f"a tree on {n} nodes must have {n - 1} edges, "
                f"got {edge_count / 2:g}"
            )
        # Connectivity (acyclicity follows from edge count + connectivity).
        seen = [False] * n
        seen[0] = True
        queue = deque([0])
        count = 1
        while queue:
            u = queue.popleft()
            for v in self._port_to_nbr[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    queue.append(v)
        if count != n:
            raise InvalidTreeError("graph is not connected")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_edges(self) -> int:
        return self._n - 1

    def degree(self, u: int) -> int:
        return len(self._port_to_nbr[u])

    @property
    def degree_table(self) -> tuple[int, ...]:
        """Cached per-node degrees (built once per Tree object)."""
        if self._degrees is None:
            self._degrees = tuple(len(row) for row in self._port_to_nbr)
        return self._degrees

    def degrees(self) -> list[int]:
        return list(self.degree_table)

    def flat_move_tables(self) -> tuple[int, tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
        """Flat integer navigation tables ``(stride, deg, move_to, move_in)``.

        ``stride`` is the maximum degree; for a node ``u`` and port
        ``p < deg[u]``, ``move_to[u * stride + p]`` is the node reached and
        ``move_in[u * stride + p]`` is the entry port observed on arrival —
        the same pair :meth:`move` returns, but reachable by plain indexing
        with no bounds checks or dict lookups.  Unused slots hold ``-1``.
        Built once per Tree object and shared by the compiled simulation
        backend and any other hot consumer.
        """
        if self._flat is None:
            deg = self.degree_table
            stride = max(deg) if deg else 0
            move_to = [-1] * (self._n * max(stride, 1))
            move_in = [-1] * (self._n * max(stride, 1))
            for u, row in enumerate(self._port_to_nbr):
                base = u * stride
                rev = self._nbr_to_port
                for p, v in enumerate(row):
                    move_to[base + p] = v
                    move_in[base + p] = rev[v][u]
            self._flat = (stride, deg, tuple(move_to), tuple(move_in))
        return self._flat

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Neighbors of ``u`` in port order."""
        return self._port_to_nbr[u]

    def leaves(self) -> list[int]:
        """All nodes of degree 1 (for n == 1, the single node)."""
        if self._n == 1:
            return [0]
        return [u for u in range(self._n) if len(self._port_to_nbr[u]) == 1]

    @property
    def num_leaves(self) -> int:
        return len(self.leaves())

    def is_leaf(self, u: int) -> bool:
        return self._n > 1 and len(self._port_to_nbr[u]) == 1

    def max_degree(self) -> int:
        return max(self.degree_table)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Undirected edges, each yielded once with ``u < v``."""
        for u, row in enumerate(self._port_to_nbr):
            for v in row:
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Navigation (the simulator's primitive)
    # ------------------------------------------------------------------
    def move(self, u: int, port: int) -> tuple[int, int]:
        """Traverse the edge leaving ``u`` through ``port``.

        Returns ``(v, in_port)`` where ``v`` is the node reached and
        ``in_port`` is the port of the traversed edge at ``v`` — exactly the
        observation an arriving agent reads.
        """
        row = self._port_to_nbr[u]
        if not (0 <= port < len(row)):
            raise InvalidPortError(f"port {port} out of range at node {u}")
        v = row[port]
        return v, self._nbr_to_port[v][u]

    def port(self, u: int, v: int) -> int:
        """The port number at ``u`` of edge ``{u, v}``."""
        try:
            return self._nbr_to_port[u][v]
        except KeyError as exc:
            raise InvalidPortError(f"{{{u}, {v}}} is not an edge") from exc

    # ------------------------------------------------------------------
    # Metric queries (simulator/test-suite side; not visible to agents)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> list[int]:
        dist = [-1] * self._n
        dist[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._port_to_nbr[u]:
                if dist[v] == -1:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def distance(self, u: int, v: int) -> int:
        return self.bfs_distances(u)[v]

    def path(self, u: int, v: int) -> list[int]:
        """The unique simple path from ``u`` to ``v`` (inclusive)."""
        parent: list[int] = [-2] * self._n
        parent[u] = -1
        queue = deque([u])
        while queue:
            w = queue.popleft()
            if w == v:
                break
            for x in self._port_to_nbr[w]:
                if parent[x] == -2:
                    parent[x] = w
                    queue.append(x)
        out = [v]
        while out[-1] != u:
            out.append(parent[out[-1]])
        out.reverse()
        return out

    def eccentricity(self, u: int) -> int:
        return max(self.bfs_distances(u))

    def diameter(self) -> int:
        far = max(range(self._n), key=lambda v: self.bfs_distances(0)[v])
        return self.eccentricity(far)

    def subtree_nodes(self, root: int, away_from: int) -> list[int]:
        """Nodes of the component of ``root`` after removing edge to ``away_from``."""
        seen = {root}
        queue = deque([root])
        while queue:
            w = queue.popleft()
            for x in self._port_to_nbr[w]:
                if x != away_from and x not in seen:
                    seen.add(x)
                    queue.append(x)
                elif x == away_from and w != root:
                    seen.add(x)  # pragma: no cover - unreachable in trees
        return sorted(seen)

    # ------------------------------------------------------------------
    # Relabeling / transformation
    # ------------------------------------------------------------------
    def with_ports(self, perms: Sequence[Sequence[int]]) -> "Tree":
        """Apply a per-node port permutation.

        ``perms[u]`` is a permutation of ``0 .. deg(u)-1``; the neighbor that
        used to sit on port ``p`` moves to port ``perms[u][p]``.
        """
        new_rows: list[list[int]] = []
        for u, row in enumerate(self._port_to_nbr):
            perm = perms[u]
            if sorted(perm) != list(range(len(row))):
                raise InvalidPortError(f"perms[{u}] is not a permutation of the ports")
            new_row = [-1] * len(row)
            for p, v in enumerate(row):
                new_row[perm[p]] = v
            new_rows.append(new_row)
        return Tree(new_rows, validate=False)

    def renumber_nodes(self, mapping: Sequence[int]) -> "Tree":
        """Renumber nodes: node ``u`` becomes ``mapping[u]`` (ports preserved)."""
        if sorted(mapping) != list(range(self._n)):
            raise InvalidTreeError("mapping is not a permutation of the nodes")
        new_rows: list[list[int]] = [[] for _ in range(self._n)]
        for u, row in enumerate(self._port_to_nbr):
            new_rows[mapping[u]] = [mapping[v] for v in row]
        return Tree(new_rows, validate=False)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``port`` edge attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for u, v in self.edges():
            g.add_edge(u, v, ports={u: self.port(u, v), v: self.port(v, u)})
        return g

    @classmethod
    def from_networkx(cls, g) -> "Tree":
        """Build from a networkx tree; ports follow adjacency order.

        Nodes must be hashable; they are renumbered ``0 .. n-1`` in sorted
        order of their string representation for determinism.
        """
        nodes = sorted(g.nodes(), key=repr)
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in g.edges()]
        return cls.from_edges(len(nodes), edges)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return self._port_to_nbr == other._port_to_nbr

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._port_to_nbr)
        return self._hash

    def __repr__(self) -> str:
        return f"Tree(n={self._n}, leaves={self.num_leaves})"

    def debug_string(self) -> str:
        """Multi-line description listing every node's port map."""
        lines = [f"Tree on {self._n} nodes:"]
        for u, row in enumerate(self._port_to_nbr):
            ports = ", ".join(f"{p}->{v}" for p, v in enumerate(row))
            lines.append(f"  node {u} (deg {len(row)}): {ports}")
        return "\n".join(lines)
