"""Generators for the tree families used throughout the paper.

Every builder returns a :class:`~repro.trees.tree.Tree` with a *canonical*
port labeling (ports assigned in construction order).  Adversarial or random
labelings are applied afterwards with :mod:`repro.trees.labelings`.

Families
--------
- lines/paths — the paper's lower bounds (Thm 3.1, Thm 4.2) live on lines;
- complete binary trees and binomial trees — the paper's examples of
  topologically symmetric but not perfectly symmetrizable positions (§4.1);
- caterpillars / spiders / brooms — small-leaf-count families for the
  O(log ℓ + log log n) upper-bound experiments;
- the Thm 3.1 "double star" example (two degree-n centers);
- random trees via Prüfer sequences, optionally with bounded degree.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

from ..errors import InvalidTreeError
from .tree import Tree

__all__ = [
    "line",
    "complete_kary_tree",
    "lobster",
    "star",
    "spider",
    "caterpillar",
    "broom",
    "double_broom",
    "complete_binary_tree",
    "binomial_tree",
    "double_star",
    "random_tree",
    "random_bounded_degree_tree",
    "all_trees",
    "subdivide",
]


def line(num_nodes: int) -> Tree:
    """A path on ``num_nodes`` nodes, numbered left to right.

    Canonical ports: at every internal node, port 0 leads left (toward node
    0) and port 1 leads right.  End nodes have the single port 0.
    """
    if num_nodes < 1:
        raise InvalidTreeError("line needs at least one node")
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return Tree.from_edges(num_nodes, edges)


def star(num_leaves: int) -> Tree:
    """A star: node 0 is the center, nodes ``1 .. num_leaves`` are leaves."""
    if num_leaves < 1:
        raise InvalidTreeError("star needs at least one leaf")
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return Tree.from_edges(num_leaves + 1, edges)


def spider(leg_lengths: Sequence[int]) -> Tree:
    """A spider: paths (*legs*) of the given lengths glued at a center node 0.

    ``leg_lengths[i] >= 1`` is the number of edges of leg ``i``.
    """
    if not leg_lengths or any(length < 1 for length in leg_lengths):
        raise InvalidTreeError("spider needs legs of length >= 1")
    edges: list[tuple[int, int]] = []
    nxt = 1
    for length in leg_lengths:
        prev = 0
        for _ in range(length):
            edges.append((prev, nxt))
            prev = nxt
            nxt += 1
    return Tree.from_edges(nxt, edges)


def caterpillar(spine: int, hairs: Sequence[int]) -> Tree:
    """A caterpillar: a spine path of ``spine`` nodes, ``hairs[i]`` legs at node i.

    Spine nodes are ``0 .. spine-1``; leaf nodes follow.
    """
    if spine < 1 or len(hairs) != spine or any(h < 0 for h in hairs):
        raise InvalidTreeError("caterpillar needs spine >= 1 and one hair count per node")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for i, h in enumerate(hairs):
        for _ in range(h):
            edges.append((i, nxt))
            nxt += 1
    return Tree.from_edges(nxt, edges)


def broom(handle: int, bristles: int) -> Tree:
    """A broom: a path of ``handle`` edges ending in a star of ``bristles`` leaves.

    Node 0 is the free end of the handle.
    """
    if handle < 1 or bristles < 1:
        raise InvalidTreeError("broom needs handle >= 1 and bristles >= 1")
    edges = [(i, i + 1) for i in range(handle)]
    center = handle
    nxt = handle + 1
    for _ in range(bristles):
        edges.append((center, nxt))
        nxt += 1
    return Tree.from_edges(nxt, edges)


def double_broom(handle: int, bristles_left: int, bristles_right: int) -> Tree:
    """Two stars joined by a path of ``handle`` edges.

    Left center is node 0, right center is node ``handle``.  Used to build
    trees with a prescribed leaf count and long paths (few leaves, many
    nodes) for the memory-scaling experiments.
    """
    if handle < 1 or bristles_left < 1 or bristles_right < 1:
        raise InvalidTreeError("double_broom needs handle >= 1 and bristles >= 1")
    edges = [(i, i + 1) for i in range(handle)]
    nxt = handle + 1
    for _ in range(bristles_left):
        edges.append((0, nxt))
        nxt += 1
    for _ in range(bristles_right):
        edges.append((handle, nxt))
        nxt += 1
    return Tree.from_edges(nxt, edges)


def complete_binary_tree(height: int) -> Tree:
    """The complete binary tree of the given ``height`` (root = node 0).

    Height 0 is a single node; height h has ``2^(h+1) - 1`` nodes.
    """
    if height < 0:
        raise InvalidTreeError("height must be >= 0")
    n = 2 ** (height + 1) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return Tree.from_edges(n, edges)


def binomial_tree(order: int) -> Tree:
    """The binomial tree B_k (2^k nodes), cf. CLRS, used as a paper example.

    B_0 is a single node; B_k is two copies of B_{k-1} with an edge between
    their roots.  Node 0 is the root.
    """
    if order < 0:
        raise InvalidTreeError("order must be >= 0")
    edges: list[tuple[int, int]] = []
    size = 1
    for _ in range(order):
        # Attach a copy of the current tree (shifted by `size`) under the root.
        edges = edges + [(u + size, v + size) for u, v in edges] + [(0, size)]
        size *= 2
    return Tree.from_edges(size, edges)


def double_star(branch: int) -> Tree:
    """The Thm 3.1 example: two degree-``branch`` nodes u, v joined through w.

    Node 0 is ``u``, node 1 is ``w``, node 2 is ``v``; nodes ``3 ..`` are the
    ``branch - 1`` leaves of each center.  Total ``2*branch + 1`` nodes.
    """
    if branch < 2:
        raise InvalidTreeError("double_star needs branch >= 2")
    edges = [(0, 1), (1, 2)]
    nxt = 3
    for _ in range(branch - 1):
        edges.append((0, nxt))
        nxt += 1
    for _ in range(branch - 1):
        edges.append((2, nxt))
        nxt += 1
    return Tree.from_edges(nxt, edges)


def random_tree(num_nodes: int, rng: Optional[random.Random] = None) -> Tree:
    """A uniformly random labeled tree via a random Prüfer sequence."""
    rng = rng or random.Random()  # repro-lint: disable=RPR003 -- documented convenience default: callers needing reproducibility pass a seeded Random; every solver/scenario path does
    if num_nodes < 1:
        raise InvalidTreeError("random_tree needs at least one node")
    if num_nodes == 1:
        return Tree([[]], validate=False)
    if num_nodes == 2:
        return line(2)
    seq = [rng.randrange(num_nodes) for _ in range(num_nodes - 2)]
    return _tree_from_pruefer(seq)


def _tree_from_pruefer(seq: Sequence[int]) -> Tree:
    n = len(seq) + 2
    degree = [1] * n
    for v in seq:
        degree[v] += 1
    edges: list[tuple[int, int]] = []
    # Standard linear-time decoding.
    ptr = 0
    leaf = -1
    # Find the smallest leaf.
    while degree[ptr] != 1:
        ptr += 1
    leaf = ptr
    for v in seq:
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1 and v < ptr:
            leaf = v
        else:
            ptr += 1
            while degree[ptr] != 1:
                ptr += 1
            leaf = ptr
    edges.append((leaf, n - 1))
    return Tree.from_edges(n, edges)


def random_bounded_degree_tree(
    num_nodes: int, max_degree: int, rng: Optional[random.Random] = None
) -> Tree:
    """A random tree whose maximum degree does not exceed ``max_degree``.

    Built by random attachment: each new node picks a uniformly random
    existing node with residual capacity.  Not uniform over all such trees,
    but covers the family well for testing purposes.
    """
    rng = rng or random.Random()  # repro-lint: disable=RPR003 -- documented convenience default: callers needing reproducibility pass a seeded Random; every solver/scenario path does
    if max_degree < 2 and num_nodes > 2:
        raise InvalidTreeError("max_degree < 2 only allows trees with <= 2 nodes")
    if num_nodes < 1:
        raise InvalidTreeError("need at least one node")
    edges: list[tuple[int, int]] = []
    capacity = {0: max_degree}
    for v in range(1, num_nodes):
        u = rng.choice(list(capacity.keys()))
        edges.append((u, v))
        capacity[u] -= 1
        if capacity[u] == 0:
            del capacity[u]
        capacity[v] = max_degree - 1
        if capacity[v] == 0:
            del capacity[v]
    return Tree.from_edges(num_nodes, edges)


def all_trees(num_nodes: int) -> list[Tree]:
    """All non-isomorphic trees on ``num_nodes`` nodes (canonical ports).

    Uses :func:`networkx.nonisomorphic_trees`; intended for exhaustive
    small-instance testing (n <= 10 or so).
    """
    import networkx as nx

    if num_nodes == 1:
        return [Tree([[]], validate=False)]
    if num_nodes == 2:
        return [line(2)]
    return [Tree.from_networkx(g) for g in nx.nonisomorphic_trees(num_nodes)]


def subdivide(tree: Tree, times: int = 1) -> Tree:
    """Subdivide every edge ``times`` times (insert ``times`` degree-2 nodes).

    Preserves the leaf count while growing ``n``: the key knob for the
    O(log ℓ + log log n) experiments (contraction T' is invariant).
    """
    if times < 0:
        raise InvalidTreeError("times must be >= 0")
    if times == 0:
        return tree
    n = tree.n
    edges: list[tuple[int, int]] = []
    nxt = n
    for u, v in tree.edges():
        prev = u
        for _ in range(times):
            edges.append((prev, nxt))
            prev = nxt
            nxt += 1
        edges.append((prev, v))
    return Tree.from_edges(nxt, edges)


def complete_kary_tree(arity: int, height: int) -> Tree:
    """The complete ``arity``-ary tree of the given height (root = node 0).

    Height 0 is a single node; the tree has ``(arity^(h+1) - 1)/(arity - 1)``
    nodes for arity >= 2.
    """
    if arity < 2:
        raise InvalidTreeError("arity must be >= 2 (use line() for arity 1)")
    if height < 0:
        raise InvalidTreeError("height must be >= 0")
    n = (arity ** (height + 1) - 1) // (arity - 1)
    edges = [((i - 1) // arity, i) for i in range(1, n)]
    return Tree.from_edges(n, edges)


def lobster(
    spine: int,
    arm_pattern: Sequence[int],
    leg_pattern: Sequence[int],
) -> Tree:
    """A lobster: a caterpillar whose hairs may carry one extra segment.

    ``arm_pattern[i]`` arms hang off spine node ``i``; each arm is a path of
    1 edge ending in ``leg_pattern[i]`` extra leaf legs.  Patterns must
    match the spine length.  Lobsters give trees of max degree ~3-4 with
    tunable leaf counts at depth 2 — a middle ground between caterpillars
    and general trees for the memory sweeps.
    """
    if spine < 1 or len(arm_pattern) != spine or len(leg_pattern) != spine:
        raise InvalidTreeError("lobster patterns must match the spine length")
    if any(a < 0 for a in arm_pattern) or any(n < 0 for n in leg_pattern):
        raise InvalidTreeError("lobster patterns must be non-negative")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for i in range(spine):
        for _ in range(arm_pattern[i]):
            arm = nxt
            edges.append((i, arm))
            nxt += 1
            for _ in range(leg_pattern[i]):
                edges.append((arm, nxt))
                nxt += 1
    return Tree.from_edges(nxt, edges)
