#!/usr/bin/env python
"""Gallery of the three constructive adversaries (Thms 3.1, 4.2, 4.3).

For concrete finite-state agents, builds each paper construction and prints
the certified defeating instance:

- Thm 3.1: arbitrary delay on a mirror-labeled line (Ω(log n));
- Thm 4.2: simultaneous start, line of length x + x' + 1 from the
  transition-digraph analysis (Ω(log log n));
- Thm 4.3: simultaneous start, two-sided tree from a behavior-function
  collision (Ω(log ℓ), max degree 3).

Every instance is machine-certified: the simulator finds a configuration
recurrence proving the agents never meet.

Run:  python examples/lower_bound_gallery.py
"""

import random

from repro.agents import (
    alternator,
    analyze_functional,
    pausing_walker,
    random_tree_automaton,
)
from repro.lowerbounds import (
    build_thm31_instance,
    build_thm42_instance,
    build_thm43_instance,
)


def show_thm31() -> None:
    print("=" * 72)
    print("Theorem 3.1 — arbitrary delay defeats the 2-state alternator")
    agent = alternator()
    inst = build_thm31_instance(agent)
    print(f"  agent: {agent.num_states} states ({agent.memory_bits} bits)")
    print(f"  defeating line: {inst.line_edges} edges ({inst.kind} case)")
    print(f"  starts: nodes {inst.start1} and {inst.start2}, "
          f"agent {inst.delayed} delayed by θ = {inst.delay}")
    print(f"  certified never-meeting: {inst.certified} "
          f"(recurrence after {inst.outcome.rounds_executed} rounds)")


def show_thm42() -> None:
    print("=" * 72)
    print("Theorem 4.2 — simultaneous start defeats the pausing walker")
    agent = pausing_walker(2)
    d = analyze_functional(agent.pi_prime())
    inst = build_thm42_instance(agent)
    print(f"  agent: {agent.num_states} states; transition digraph: "
          f"{len(d.circuits)} circuit(s), γ = {d.gamma}")
    print(f"  construction: x = {inst.x}, x' = {inst.x_prime}, "
          f"line of {inst.line_edges} edges")
    print(f"  agents start adjacent (nodes {inst.start1}, {inst.start2}), delay 0")
    print(f"  certified never-meeting: {inst.certified}")


def show_thm43() -> None:
    print("=" * 72)
    print("Theorem 4.3 — a behavior-function collision defeats a 2-bit agent")
    agent = random_tree_automaton(3, rng=random.Random(41))
    inst = build_thm43_instance(agent, 5)  # ℓ = 10 leaves
    print(f"  agent: {agent.num_states} states ({agent.memory_bits} bits)")
    print(f"  side trees searched: {2 ** (5 - 1)}; colliding pair found:")
    print(f"    side 1 hair choices: {inst.side1.choices}")
    print(f"    side 2 hair choices: {inst.side2.choices}")
    print(f"  two-sided tree: {inst.tree.n} nodes, ℓ = {inst.ell} leaves, "
          f"max degree {inst.tree.max_degree()}")
    print(f"  starts: joining nodes {inst.two_sided.u}, {inst.two_sided.v}, delay 0")
    print(f"  certified never-meeting: {inst.certified}")


def main() -> None:
    show_thm31()
    show_thm42()
    show_thm43()
    print("=" * 72)


if __name__ == "__main__":
    main()
