"""A tour of the declarative scenario subsystem.

Experiments are registered specs (data), executed through pluggable
simulation backends, and persisted as schema-validated JSON.  This
example lists the registry, runs one scenario on two backends, checks
outcome parity, and round-trips a result through the store.

Run with: ``PYTHONPATH=src python examples/scenario_tour.py``
"""

import tempfile

from repro.scenarios import (
    DelayPolicy,
    ResultStore,
    Runner,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)


def main() -> None:
    print("== the registry ==")
    for name in scenario_names():
        print(f"  {name:<18} {get_scenario(name).kind}")

    print("\n== one scenario, two backends, identical outcomes ==")
    runner = Runner()
    reference = runner.run("thm31-sweep", backend="reference")
    compiled = runner.run("thm31-sweep", backend="compiled")
    print(compiled.table())
    print(f"rows identical across backends: {reference.rows == compiled.rows}")
    print(f"spec hash (backend-independent): {compiled.spec_hash()}")

    print("\n== an ad-hoc spec: specs are data, not code ==")
    spec = ScenarioSpec(
        name="tour-delays",
        kind="delay_sweep",
        tree="colored:9",
        agent="pausing:1",
        pairs=((0, 6),),
        delays=DelayPolicy.sweep(8),
    )
    result = runner.run(spec)
    print(result.table())
    print(f"summary: {result.summary}")

    print("\n== persistence: schema-validated JSON, diffable ==")
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        path = store.save(result)
        print(f"saved {path.name}; diff vs itself: "
              f"{store.diff(path, path) or 'equivalent'}")


if __name__ == "__main__":
    main()
