#!/usr/bin/env python
"""Watching the Theorem 4.1 agent think: phases, registers, memory.

Runs one agent solo on an odd line (the symmetric-contraction stress case),
recovers its stage timeline from the register events, and prints the
memory ledger — the practical companion to docs/ALGORITHM.md.

Run:  python examples/inside_the_algorithm.py
"""

from repro.analysis import format_timeline, stage_timeline
from repro.core import estimate_round_budget, measure_memory, rendezvous_agent
from repro.sim import run_solo
from repro.trees import ascii_tree, line


def main() -> None:
    tree = line(9)
    start = 0

    print("The arena (an odd line — contraction is symmetric, so the agent")
    print("runs the full Stage-2 machinery):")
    print(ascii_tree(tree, root=start, marks={start: "start"}))
    print()

    run = run_solo(tree, start, rendezvous_agent(max_outer=2), 60_000)
    print(f"solo run: {run.rounds} rounds recorded, finished={run.finished}")
    print()
    print("stage timeline (recovered from register first-writes):")
    print(format_timeline(stage_timeline(run)))
    print()

    print("register event samples:")
    for name in ("explo_nu", "synchro_arrivals", "prime_p", "outer_i"):
        series = run.value_series(name)
        head = ", ".join(f"r{r}={v}" for r, v in series[:4])
        print(f"  {name:<18} {head}{' ...' if len(series) > 4 else ''}")
    print()

    report = measure_memory(
        tree, start, rendezvous_agent(max_outer=2), estimate_round_budget(tree, 2)
    )
    print(f"memory ledger ({report.declared} declared bits):")
    for name, (bound, peak) in report.registers.items():
        print(f"  {name:<22} bound={bound:<6} peak={peak}")


if __name__ == "__main__":
    main()
