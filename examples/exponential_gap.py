#!/usr/bin/env python
"""The headline experiment: delays induce an exponential memory gap.

Reproduces the paper's title claim on a family of trees with ℓ = 4 leaves
and growing n (subdivided complete binary trees):

- with simultaneous start (delay 0), the Theorem 4.1 agent's memory stays
  flat — O(log ℓ + log log n);
- with arbitrary delay, memory must grow like log n: the measured Θ(log n)
  baseline tracks it from above, and the Theorem 3.1 adversary certifies
  from below that b-bit agents die on lines of length O(2^b).

Run:  python examples/exponential_gap.py
"""

from repro.agents import counting_walker
from repro.analysis import format_gap_table, gap_table
from repro.lowerbounds import build_thm31_instance


def main() -> None:
    print("Gap table (ℓ = 4, growing n; bits are declared register widths)")
    rows = gap_table(subdivisions=(0, 1, 3, 7, 15))
    print(format_gap_table(rows))
    print()
    print("delay-0 memory is flat in n; arbitrary-delay memory grows ~2·log n.")
    print()

    print("Theorem 3.1 evidence (lower bound side of the gap):")
    print("for k-bit counting walkers, the certified defeating line grows ~2^k:")
    print(f"{'bits':>6} {'defeating line edges':>22} {'delay':>7} {'certified':>10}")
    for k in (1, 2, 3, 4, 5):
        agent = counting_walker(k)
        inst = build_thm31_instance(agent)
        print(
            f"{agent.memory_bits:>6} {inst.line_edges:>22} "
            f"{inst.delay:>7} {str(inst.certified):>10}"
        )
    print()
    print("Read together: to survive arbitrary delays on n-node lines an agent")
    print("needs ~log n bits, while delay 0 needs only O(log ℓ + log log n) —")
    print("an exponential gap for trees with polylogarithmically many leaves.")


if __name__ == "__main__":
    main()
