#!/usr/bin/env python
"""Build, save, reload, and re-verify an adversarial instance.

Shows the persistence workflow around the lower-bound constructions:
construct a certified Theorem 3.1 instance, serialize it to JSON, reload
it, and re-run the certification from the serialized form — the regression
loop a user maintaining a zoo of hard instances would run.

Run:  python examples/adversarial_instances.py
"""

import json

from repro.agents import pausing_walker
from repro.lowerbounds import build_thm31_instance
from repro.sim import run_rendezvous
from repro.trees import (
    Instance,
    annotate_instance,
    instance_from_json,
    instance_to_json,
)


def main() -> None:
    agent = pausing_walker(2)
    built = build_thm31_instance(agent)
    print(f"built Thm 3.1 instance: {built.line_edges}-edge line, "
          f"delay {built.delay}, kind {built.kind}, certified={built.certified}")

    inst = Instance(
        built.tree,
        built.start1,
        built.start2,
        delay=built.delay,
        delayed=built.delayed,
        note=f"thm31 vs pausing_walker(2), {agent.memory_bits} bits",
    )
    payload = instance_to_json(inst, indent=2)
    print(f"serialized to {len(payload)} bytes of JSON")

    reloaded = instance_from_json(payload)
    assert reloaded.tree == built.tree
    print(f"reloaded: note = {reloaded.note!r}")

    outcome = run_rendezvous(
        reloaded.tree,
        agent,
        reloaded.start1,
        reloaded.start2,
        delay=reloaded.delay,
        delayed=reloaded.delayed,
        max_rounds=2_000_000,
        certify=True,
    )
    print(f"re-verified from JSON: certified_never = {outcome.certified_never}")
    print()
    print("the instance (agents marked):")
    art = annotate_instance(reloaded.tree, reloaded.start1, reloaded.start2)
    # lines are deep; show the marked region only
    interesting = [l for l in art.splitlines() if "agent" in l]
    print("\n".join(interesting))


if __name__ == "__main__":
    main()
