#!/usr/bin/env python
"""Quickstart: rendezvous of two identical agents in an anonymous tree.

Builds a complete binary tree, places two agents on topologically symmetric
leaves (the paper's flagship feasible-but-symmetric example), runs the
Theorem 4.1 algorithm with simultaneous start, and prints the outcome plus
the agent's memory account.

Run:  python examples/quickstart.py
"""

from repro.analysis import classify_pair
from repro.core import solve
from repro.trees import complete_binary_tree


def main() -> None:
    tree = complete_binary_tree(3)  # 15 nodes, 8 leaves
    u, v = 7, 14  # the leftmost and rightmost leaves

    # Feasibility first (Fact 1.1): the pair is topologically symmetric but
    # NOT perfectly symmetrizable, because the tree has a central node.
    pc = classify_pair(tree, u, v)
    print(f"tree: {tree}")
    print(f"start pair ({u}, {v}): {pc.kind}  (feasible: {pc.feasible})")

    result = solve(tree, u, v)
    print(f"met: {result.met} at round {result.outcome.meeting_round} "
          f"on node {result.outcome.meeting_node}")

    # The joint run can end with a lucky early meeting before the agent
    # declares its counters; the paper's memory measure is what the agent
    # must be equipped with, so measure a solo execution over a full
    # algorithm horizon:
    from repro.core import estimate_round_budget, measure_memory, rendezvous_agent

    report = measure_memory(
        tree, u, rendezvous_agent(max_outer=2), estimate_round_budget(tree, 2)
    )
    print(f"agent memory requirement: {report.declared} declared bits "
          f"({report.used} bits actually exercised)")
    for name, (bound, peak) in report.registers.items():
        print(f"  register {name:<24} bound={bound:<8} peak={peak}")


if __name__ == "__main__":
    main()
