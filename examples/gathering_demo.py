#!/usr/bin/env python
"""Gathering demo: the paper's 'natural extension' with k > 2 agents.

Three identical Theorem 4.1 agents gather in a spider tree (central node:
the easy regime, where the two-agent algorithm generalizes verbatim), even
under wildly different start delays.  Also shows the regime classifier on a
symmetric tree where gathering guarantees stop at k = 2.

Run:  python examples/gathering_demo.py
"""

import random

from repro.core import classify_gathering, gather
from repro.sim import run_solo
from repro.core import rendezvous_agent
from repro.trees import annotate_instance, ascii_tree, line, random_relabel, spider, subdivide


def main() -> None:
    rng = random.Random(12)
    tree = random_relabel(subdivide(spider([2, 3, 4]), 1), rng)
    starts = [2, 8, 17]
    delays = [0, 23, 57]

    print("The arena (ports shown as parent/child):")
    print(ascii_tree(tree, marks={s: f"agent {i+1}" for i, s in enumerate(starts)}))
    print()

    regime = classify_gathering(tree)
    print(f"gathering regime: {regime.kind} (guaranteed: {regime.guaranteed})")

    outcome, _ = gather(tree, starts, delays=delays)
    print(f"gathered: {outcome.gathered} at round {outcome.gathering_round} "
          f"on node {outcome.gathering_node}")
    print(f"largest cluster en route: {outcome.largest_cluster}")
    print()

    # Watch one agent alone to see WHERE it decides to wait:
    solo = run_solo(tree, starts[0], rendezvous_agent(max_outer=2), 2000)
    print(f"solo agent from node {starts[0]}: settles on node "
          f"{solo.final_position} after {solo.rounds} rounds "
          f"(finished={solo.finished})")
    print()

    sym = line(9)
    print(f"symmetric-contraction tree (odd line): "
          f"{classify_gathering(sym).kind} — guarantees only for k = 2 there.")
    print()

    # For finite-state agents the gathering question is *decidable*: the
    # joint-configuration solver certifies non-gathering instead of
    # timing out.  Decide a whole per-agent delay grid in one pass:
    from repro.agents import counting_walker
    from repro.sim import solve_gathering

    grid = [[0, 0, 0], [0, 1, 2], [1, 0, 2], [2, 0, 1]]
    verdicts = solve_gathering(line(9), counting_walker(2), [0, 1, 3], grid)
    print("counting_walker(2) ×3 on line:9, starts 0,1,3 — exact verdicts:")
    for v in verdicts:
        fate = (f"gathers at round {v.gathering_round}"
                if v.gathered else "certifiably never gathers")
        print(f"  delays {','.join(map(str, v.delays))}: {fate}")
    print("(the same grids run at scale via "
          "`python -m repro scenarios run gathering-line-k3`)")


if __name__ == "__main__":
    main()
