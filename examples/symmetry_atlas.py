#!/usr/bin/env python
"""Feasibility atlas: when is rendezvous solvable at all? (Fact 1.1)

Sweeps all non-isomorphic trees up to 9 nodes and classifies every start
pair as perfectly symmetrizable (infeasible), topologically symmetric but
feasible (the interesting class), or asymmetric.  Then spot-checks the
paper's flagship examples and verifies the algorithm agrees with the
classification on a sample.

Run:  python examples/symmetry_atlas.py
"""

from repro.analysis import classify_pair, summarize_tree
from repro.core import solve
from repro.trees import all_trees, complete_binary_tree, line


def atlas() -> None:
    print(f"{'n':>3} {'trees':>6} {'pairs':>7} {'infeasible':>11} "
          f"{'sym-feasible':>13} {'asymmetric':>11}")
    for n in range(2, 10):
        trees = all_trees(n)
        tot = inf = sym = asym = 0
        for t in trees:
            s = summarize_tree(t)
            tot += s.pairs_total
            inf += s.pairs_perfectly_symmetrizable
            sym += s.pairs_symmetric_feasible
            asym += s.pairs_asymmetric
        print(f"{n:>3} {len(trees):>6} {tot:>7} {inf:>11} {sym:>13} {asym:>11}")


def flagship_examples() -> None:
    print()
    print("Paper flagship cases:")
    t = line(7)
    pc = classify_pair(t, 0, 6)
    print(f"  odd line endpoints (0, 6):        {pc.kind}")
    r = solve(t, 0, 6)
    print(f"    -> algorithm meets at round {r.outcome.meeting_round}")

    t = line(8)
    pc = classify_pair(t, 0, 7)
    print(f"  even line endpoints (0, 7):       {pc.kind} (no agents can solve this)")

    t = complete_binary_tree(2)
    pc = classify_pair(t, 3, 6)
    print(f"  binary tree opposite leaves (3,6): {pc.kind}")
    r = solve(t, 3, 6)
    print(f"    -> algorithm meets at round {r.outcome.meeting_round}")


def main() -> None:
    atlas()
    flagship_examples()


if __name__ == "__main__":
    main()
