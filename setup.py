"""Packaging for the rendezvous-in-trees reproduction.

This environment's setuptools predates PEP 660 editable installs
without the `wheel` package, so editable installs go through
`setup.py develop`; metadata therefore lives here rather than in a
pyproject.toml.  numpy powers the vectorized sweep kernel
(`repro.sim.kernel`) and the traced pairs batcher; both degrade to the
dict/scalar paths when it is absent, but the declared dependency keeps
fresh installs on the fast paths (CI pins the exact version in
requirements-ci.txt).
"""

from setuptools import find_packages, setup

setup(
    name="repro-rendezvous-trees",
    version="0.7.0",
    description=(
        "Reproduction of deterministic rendezvous in trees with little memory"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
    ],
)
