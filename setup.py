"""Legacy shim: this environment's setuptools predates PEP 660 editable
installs without the `wheel` package, so editable installs go through
`setup.py develop`. All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
