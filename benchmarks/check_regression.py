"""Bench regression gate: compare a refreshed BENCH_engine.json to a baseline.

``make bench-smoke`` rewrites ``BENCH_engine.json`` with freshly measured
sections; this script walks both the refreshed file and a committed
baseline, collects every recorded timing (keys ending in ``_seconds``,
matched by dotted path), and fails when any timing slowed down by more
than the tolerance factor:

    current > tolerance * max(baseline, floor)

The floor guards the sub-hundredth-second micro-timings (the batch-solver
best-of runs take a few milliseconds; scheduler jitter alone can triple
them) — a timing only gates once its baseline is measurable.  Paths
present on one side only are reported but never fail the gate: quick-mode
refreshes legitimately carry different instance sizes than a full run,
but their section structure is identical.

``--require <section>`` (repeatable) registers a top-level section that
must exist non-empty in the current file — a benchmark silently dropping
out of ``bench-smoke`` would otherwise read as "no regression" (its
timings land on the never-fatal "only in baseline" path).  The Makefile
requires every recorded section (throughput, delay_sweep, lowering,
kernel).

Usage (what ``make check-regression`` and the CI job run)::

    python benchmarks/check_regression.py \
        --baseline /tmp/BENCH_engine.baseline.json --current BENCH_engine.json \
        --require kernel --require lowering

Exit status: 0 = within tolerance, 1 = regression or missing required
section, 2 = unusable inputs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_TOLERANCE = 2.5
DEFAULT_FLOOR = 0.02  # seconds: baselines below this are jitter-dominated


def collect_timings(payload, prefix: str = "") -> dict[str, float]:
    """Every ``*_seconds`` number in the document, keyed by dotted path."""
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and str(key).endswith("_seconds")
            ):
                out[path] = float(value)
            else:
                out.update(collect_timings(value, path))
    elif isinstance(payload, list):
        for idx, value in enumerate(payload):
            out.update(collect_timings(value, f"{prefix}[{idx}]"))
    return out


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    floor: float = DEFAULT_FLOOR,
) -> tuple[list[str], list[str]]:
    """(regressions, notes) — human-readable lines."""
    regressions: list[str] = []
    notes: list[str] = []
    for path in sorted(set(baseline) | set(current)):
        if path not in current:
            notes.append(f"  - {path}: only in baseline (skipped)")
            continue
        if path not in baseline:
            notes.append(f"  - {path}: only in current (skipped)")
            continue
        base = baseline[path]
        cur = current[path]
        limit = tolerance * max(base, floor)
        ratio = cur / base if base > 0 else float("inf")
        line = f"{path}: {base:.4f}s -> {cur:.4f}s ({ratio:.2f}x)"
        if cur > limit:
            regressions.append(f"  ! {line} exceeds {tolerance}x tolerance")
        else:
            notes.append(f"  . {line}")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="committed BENCH_engine.json snapshot")
    parser.add_argument("--current", required=True, type=pathlib.Path,
                        help="freshly refreshed BENCH_engine.json")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="fail on current > tolerance * baseline "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="baseline floor in seconds for jitter-dominated "
                             f"micro-timings (default {DEFAULT_FLOOR})")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SECTION",
                        help="top-level section that must exist non-empty "
                             "in the current file (repeatable)")
    args = parser.parse_args(argv)

    try:
        baseline = collect_timings(json.loads(args.baseline.read_text()))
        current_payload = json.loads(args.current.read_text())
        current = collect_timings(current_payload)
    except (OSError, ValueError) as exc:
        print(f"check_regression: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"check_regression: no *_seconds timings in {args.baseline}",
              file=sys.stderr)
        return 2

    missing = [
        section for section in args.require
        if not current_payload.get(section)
    ]
    if missing:
        print("required section(s) missing from "
              f"{args.current}: {', '.join(missing)}")
        return 1

    regressions, notes = compare(
        baseline, current, tolerance=args.tolerance, floor=args.floor
    )
    print(f"bench regression gate: {len(baseline)} baseline timings, "
          f"tolerance {args.tolerance}x, floor {args.floor}s")
    for line in notes:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} timing(s) regressed:")
        for line in regressions:
            print(line)
        return 1
    print("\nall recorded timings within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
