"""E4 — Lemma 4.1: the prime-speed protocol on paths.

Regenerates the lemma's quantitative content: rendezvous rounds grow
polynomially in the path length m while the *memory* (largest prime used)
grows like log m — the O(log log m) bits claim.
"""

from _util import run_scenario


def test_prime_rounds_curve(benchmark):
    result = run_scenario("prime-rounds", benchmark)
    assert result.ok
    assert 0.5 < result.summary["loglog_slope"] < 3.5


def test_prime_memory_growth(benchmark):
    """Worst-case prime needed grows ~log m => memory O(log log m).

    Easy pairs meet at p = 2; the hard instances are *near-mirror* pairs on
    the mirror-symmetric labeling, where the executions stay almost
    symmetric and only the prime mechanism can break the deadlock.  The
    instance list in the registry spec records the worst cases found by an
    offset search over each line (see DESIGN.md, E4).
    """
    result = run_scenario("prime-memory", benchmark)
    assert result.ok
    primes = [row["max_prime"] for row in result.rows]
    assert primes[0] < primes[-1] <= 31
