"""E4 — Lemma 4.1: the prime-speed protocol on paths.

Regenerates the lemma's quantitative content: rendezvous rounds grow
polynomially in the path length m while the *memory* (largest prime used)
grows like log m — the O(log log m) bits claim.
"""

from _util import record

from repro.analysis import fit_loglog_slope, prime_rounds_vs_path_length
from repro.core import prime_line_agent
from repro.sim import run_rendezvous
from repro.trees import line


def test_prime_rounds_curve(benchmark):
    series = benchmark.pedantic(
        prime_rounds_vs_path_length,
        kwargs={"lengths": (5, 9, 17, 33, 65)},
        rounds=1,
        iterations=1,
    )
    slope = fit_loglog_slope(series.xs, series.ys)
    text = series.table("path nodes m", "meeting round")
    text += f"\nlog-log slope: {slope:.2f} (polynomial, not exponential)"
    record("E4_prime_rounds", text)
    assert 0.5 < slope < 3.5


def test_prime_memory_growth(benchmark):
    """Worst-case prime needed grows ~log m => memory O(log log m).

    Easy pairs meet at p = 2; the hard instances are *near-mirror* pairs on
    the mirror-symmetric labeling, where the executions stay almost
    symmetric and only the prime mechanism can break the deadlock.  The
    pairs below are the worst cases found by an offset search over each
    line (see DESIGN.md, E4).
    """
    from repro.trees import thm31_line_labeling

    hard = [(20, 0, 15), (32, 0, 19), (92, 0, 31), (122, 1, 60)]

    def sweep():
        rows = []
        for m, a, b in hard:
            t = thm31_line_labeling(m)
            out = run_rendezvous(
                t, prime_line_agent(), a, b, max_rounds=30_000_000
            )
            assert out.met, (m, a, b)
            report = out.agents[0].registers.report()
            rows.append((m, a, b, report["prime_p"][1], out.meeting_round))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = (
        f"{'m':>6} {'a':>4} {'b':>4} {'max prime':>10} {'round':>8}\n"
        + "\n".join(f"{m:>6} {a:>4} {b:>4} {p:>10} {r:>8}" for m, a, b, p, r in rows)
    )
    record("E4_prime_memory", text)
    primes = [p for *_, p, _r in rows]
    # worst-case prime grows with m (log-ish), stays tiny in absolute terms
    assert primes[0] < primes[-1] <= 31
