"""E6 — Theorem 4.3: the Ω(log ℓ) adversary (max degree 3).

Regenerates the pigeonhole construction: for small agents and growing
ℓ = 2i, find two side trees with identical behavior functions, join them,
and certify non-meeting.  Also demonstrates the bound's contrapositive:
agents with more memory may admit no collision at small ℓ.
"""

from _util import run_scenario


def test_thm43_defeats_small_agents(benchmark):
    result = run_scenario("thm43", benchmark)
    assert result.ok
    assert all(row["certified"] for row in result.rows)


def test_thm43_collision_rate_vs_memory(benchmark):
    """More memory => fewer collisions at fixed ℓ (the bound's mechanism)."""
    result = run_scenario("thm43-collisions", benchmark)
    assert result.ok
