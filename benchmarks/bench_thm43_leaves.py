"""E6 — Theorem 4.3: the Ω(log ℓ) adversary (max degree 3).

Regenerates the pigeonhole construction: for small agents and growing
ℓ = 2i, find two side trees with identical behavior functions, join them,
and certify non-meeting.  Also demonstrates the bound's contrapositive:
agents with more memory may admit no collision at small ℓ.
"""

import random

from _util import record

from repro.agents import random_tree_automaton
from repro.errors import ConstructionError
from repro.lowerbounds import build_thm43_instance, find_colliding_side_trees


def test_thm43_defeats_small_agents(benchmark):
    def sweep():
        rng = random.Random(41)
        rows = []
        for i_leaf in (4, 5, 6):
            agent = random_tree_automaton(3, rng=rng)
            inst = build_thm43_instance(agent, i_leaf)
            rows.append(
                (2 * i_leaf, inst.memory_bits, inst.tree.n,
                 2 ** (i_leaf - 1), inst.certified)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'leaves':>7} {'bits':>5} {'n':>5} {'side trees':>11} {'certified':>10}"
    text = header + "\n" + "\n".join(
        f"{l:>7} {b:>5} {n:>5} {s:>11} {str(c):>10}" for l, b, n, s, c in rows
    )
    record("E6_thm43_instances", text)
    assert all(c for *_, c in rows)


def test_thm43_collision_rate_vs_memory(benchmark):
    """More memory => fewer collisions at fixed ℓ (the bound's mechanism)."""

    def sweep():
        rng = random.Random(5)
        rates = []
        for k in (2, 4, 8):
            hits = 0
            trials = 6
            for _ in range(trials):
                agent = random_tree_automaton(k, rng=rng)
                if find_colliding_side_trees(agent, 4, 4) is not None:
                    hits += 1
            rates.append((k, hits, trials))
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = f"{'states':>7} {'collisions':>11} {'trials':>7}\n" + "\n".join(
        f"{k:>7} {h:>11} {t:>7}" for k, h, t in rates
    )
    record("E6_thm43_collision_rates", text)
    # small agents always collide at ℓ = 8
    assert rates[0][1] == rates[0][2]
