"""Ablation — the 5ℓ repetition constant of the rendezvous path P.

The paper sizes P as (B_u | C | B̄_v | C)^{5ℓ} | (B_u | C | B̄_v) so that
|P| exceeds the worst-case desynchronization (~20nℓ).  This ablation runs
the algorithm with smaller and larger repetition factors to show (a) the
paper's 5 is safely sufficient on the stress family, and (b) how meeting
time scales with the factor.
"""

import random

from _util import record

from repro.core import rendezvous_agent
from repro.sim import run_rendezvous
from repro.trees import line, perfectly_symmetrizable, random_relabel


def test_reps_factor_ablation(benchmark):
    def sweep():
        rng = random.Random(9)
        trees = [random_relabel(line(m), rng) for m in (9, 13)]
        rows = []
        for factor in (1, 2, 5, 8):
            met = 0
            runs = 0
            worst = 0
            for tree in trees:
                for u, v in [(0, 3), (1, 5), (2, tree.n - 1)]:
                    if perfectly_symmetrizable(tree, u, v):
                        continue
                    runs += 1
                    out = run_rendezvous(
                        tree,
                        rendezvous_agent(reps_factor=factor, max_outer=10),
                        u,
                        v,
                        max_rounds=3_000_000,
                    )
                    met += out.met
                    worst = max(worst, out.meeting_round or 0)
            rows.append((factor, met, runs, worst))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'reps factor':>12} {'met':>4} {'runs':>5} {'worst round':>12}"
    text = header + "\n" + "\n".join(
        f"{f:>12} {m:>4} {r:>5} {w:>12}" for f, m, r, w in rows
    )
    record("ABL_reps_factor", text)
    # the paper's factor 5 must succeed everywhere on this family
    paper = next(row for row in rows if row[0] == 5)
    assert paper[1] == paper[2]
