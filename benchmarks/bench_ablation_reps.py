"""Ablation — the 5ℓ repetition constant of the rendezvous path P.

The paper sizes P as (B_u | C | B̄_v | C)^{5ℓ} | (B_u | C | B̄_v) so that
|P| exceeds the worst-case desynchronization (~20nℓ).  This ablation runs
the algorithm with smaller and larger repetition factors to show (a) the
paper's 5 is safely sufficient on the stress family, and (b) how meeting
time scales with the factor.
"""

from _util import run_scenario


def test_reps_factor_ablation(benchmark):
    result = run_scenario("ablation-reps", benchmark)
    # the paper's factor 5 must succeed everywhere on this family
    assert result.ok
    paper = next(row for row in result.rows if row["factor"] == 5)
    assert paper["met"] == paper["runs"]
