"""Time-memory trade-off (the successor-work direction the paper cites [15]).

Sweeps the Theorem 4.1 agent's knobs and reports worst/mean meeting rounds
on the stress family (lines: symmetric contraction, full Stage-2 machinery).
"""

from _util import run_scenario


def test_reps_factor_time_curve(benchmark):
    result = run_scenario("tradeoff-reps", benchmark)
    assert result.ok
    assert all(row["met"] == row["runs"] for row in result.rows)
