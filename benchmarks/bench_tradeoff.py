"""Time-memory trade-off (the successor-work direction the paper cites [15]).

Sweeps the Theorem 4.1 agent's knobs and reports worst/mean meeting rounds
on the stress family (lines: symmetric contraction, full Stage-2 machinery).
"""

from _util import record

from repro.analysis import reps_factor_tradeoff, stress_instances


def test_reps_factor_time_curve(benchmark):
    pool = stress_instances(sizes=(9, 13, 17), pairs_per_tree=3)
    rows = benchmark.pedantic(
        reps_factor_tradeoff,
        kwargs={"factors": (1, 2, 5, 8), "instances": pool},
        rounds=1,
        iterations=1,
    )
    header = f"{'reps factor':>12} {'met/runs':>9} {'worst':>8} {'mean':>10}"
    text = header + "\n" + "\n".join(
        f"{r.knob:>12} {r.met}/{r.runs:>6} {r.worst_round:>8} {r.mean_round:>10.1f}"
        for r in rows
    )
    record("TRD_reps_factor_time", text)
    assert all(r.success_rate == 1.0 for r in rows)
