"""E1 — Figure 1 / Theorem 3.1: the arbitrary-delay adversary.

Regenerates the paper's lower-bound artifact: for agents of growing memory,
the constructed (and machine-certified) defeating line.  The reproduction
target is the *shape*: defeating-instance size grows exponentially in the
agent's memory bits, i.e. rendezvous with arbitrary delay on n-node lines
needs Ω(log n) bits.
"""

import random

from _util import record

from repro.agents import random_line_automaton
from repro.analysis import growth_ratios, thm31_size_vs_bits
from repro.lowerbounds import build_thm31_instance


def test_thm31_counting_walker_curve(benchmark):
    series = benchmark.pedantic(
        thm31_size_vs_bits, args=((1, 2, 3, 4, 5),), rounds=1, iterations=1
    )
    lines = [series.table("memory bits", "defeating line edges")]
    lines.append(f"growth ratios: {[round(r, 2) for r in growth_ratios(series.ys)]}")
    record("E1_thm31_counting_walkers", "\n".join(lines))
    assert all(r > 1.3 for r in growth_ratios(series.ys))


def test_thm31_random_agents(benchmark):
    def sweep():
        rng = random.Random(0)
        rows = []
        for k in (2, 4, 8, 16):
            inst = build_thm31_instance(random_line_automaton(k, rng))
            rows.append((inst.memory_bits, inst.line_edges, inst.kind, inst.delay))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = f"{'bits':>5} {'edges':>6} {'kind':>9} {'delay':>6}\n" + "\n".join(
        f"{b:>5} {e:>6} {k:>9} {d:>6}" for b, e, k, d in rows
    )
    record("E1_thm31_random_agents", text)
    assert len(rows) == 4
