"""E1 — Figure 1 / Theorem 3.1: the arbitrary-delay adversary.

Regenerates the paper's lower-bound artifact: for agents of growing memory,
the constructed (and machine-certified) defeating line.  The reproduction
target is the *shape*: defeating-instance size grows exponentially in the
agent's memory bits, i.e. rendezvous with arbitrary delay on n-node lines
needs Ω(log n) bits.
"""

from _util import run_scenario


def test_thm31_counting_walker_curve(benchmark):
    result = run_scenario(
        "thm31-sweep", benchmark, params={"ks": [1, 2, 3, 4, 5]}
    )
    assert result.ok
    assert all(r > 1.3 for r in result.summary["growth_ratios"])


def test_thm31_random_agents(benchmark):
    result = run_scenario("thm31-random", benchmark)
    assert result.ok
    assert len(result.rows) == 4
    assert all(row["certified"] for row in result.rows)
