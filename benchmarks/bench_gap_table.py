"""E7 — the headline result: the exponential memory gap.

On trees with ℓ = 4 leaves and growing n:

- the delay-0 (Theorem 4.1) agent's memory stays flat (O(log ℓ + log log n));
- the arbitrary-delay baseline's memory grows like log n — and Theorem 3.1
  certifies that *no* o(log n)-bit agent can survive arbitrary delays on
  lines of matching size (see E1).

For polylog-leaf trees this is an exponential separation between the two
scenarios' memory requirements, the paper's title claim.
"""

from _util import record

from repro.analysis import format_gap_table, gap_table


def test_gap_table(benchmark):
    rows = benchmark.pedantic(
        gap_table, kwargs={"subdivisions": (0, 1, 3, 7, 15, 31)},
        rounds=1, iterations=1,
    )
    text = format_gap_table(rows)
    delay0 = [r.delay0_bits for r in rows]
    arb = [r.arbitrary_bits for r in rows]
    text += (
        "\n\nshape check: delay-0 bits flat in n "
        f"(range {min(delay0)}..{max(delay0)}), "
        f"arbitrary-delay bits grow with log n ({arb[0]} -> {arb[-1]})"
    )
    record("E7_gap_table", text)
    assert all(r.delay0_met and r.arbitrary_met for r in rows)
    assert max(delay0) - min(delay0) <= 4
    assert arb == sorted(arb) and arb[-1] > arb[0]
