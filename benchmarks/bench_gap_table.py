"""E7 — the headline result: the exponential memory gap.

On trees with ℓ = 4 leaves and growing n:

- the delay-0 (Theorem 4.1) agent's memory stays flat (O(log ℓ + log log n));
- the arbitrary-delay baseline's memory grows like log n — and Theorem 3.1
  certifies that *no* o(log n)-bit agent can survive arbitrary delays on
  lines of matching size (see E1).

For polylog-leaf trees this is an exponential separation between the two
scenarios' memory requirements, the paper's title claim.
"""

from _util import run_scenario


def test_gap_table(benchmark):
    result = run_scenario("gap-table", benchmark)
    assert result.ok
    delay0 = [r["delay0_bits"] for r in result.rows]
    arb = [r["arbitrary_bits"] for r in result.rows]
    assert max(delay0) - min(delay0) <= 4
    assert arb == sorted(arb) and arb[-1] > arb[0]
