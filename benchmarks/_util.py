"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative artifacts
(EXPERIMENTS.md E1-E8) and records the produced table under
``benchmarks/results/`` so the run leaves an inspectable trace regardless
of pytest's capture settings.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def record(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"==== {name} ===="
    print(f"\n{banner}\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def record_json(name: str, payload: dict, directory: pathlib.Path | None = None) -> pathlib.Path:
    """Persist a machine-readable result to <directory>/<name>.json.

    Defaults to the repo root (rather than benchmarks/results/) so the
    perf trajectory is versioned alongside the code and future PRs can
    diff it; callers that must not dirty the working tree (the tier-1
    smoke test) pass their own directory.
    """
    path = (directory or REPO_ROOT) / f"{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(f"\n==== {name} ====\n{text}\n")
    path.write_text(text + "\n")
    return path
