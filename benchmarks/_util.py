"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative artifacts
(EXPERIMENTS.md E1-E8) and records the produced table under
``benchmarks/results/`` so the run leaves an inspectable trace regardless
of pytest's capture settings.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"==== {name} ===="
    print(f"\n{banner}\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
