"""Shared harness for the benchmark scripts.

Every benchmark regenerates one of the paper's quantitative artifacts by
running a *registered scenario* (:mod:`repro.scenarios`) and persisting
the structured, schema-validated JSON result under
``benchmarks/results/`` (the ad-hoc ``.txt`` tables this directory used
to accumulate are gone).  A checked-in golden sample lives under
``benchmarks/results/golden/`` and is enforced by
``tests/scenarios/test_scenario_store.py``.
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def run_scenario(
    name: str,
    benchmark=None,
    *,
    out_dir: pathlib.Path | None = None,
    backend: str | None = None,
    **overrides,
):
    """Run a registered scenario and persist its JSON result.

    ``benchmark`` is the pytest-benchmark fixture (optional, so the
    scripts also run as plain functions); ``overrides`` are forwarded to
    :meth:`repro.scenarios.Runner.run` (``params=...``, ``seed=...``).
    Returns the :class:`repro.scenarios.ScenarioResult`.
    """
    from repro.scenarios import ResultStore, Runner

    runner = Runner(backend=backend)

    def once():
        return runner.run(name, **overrides)

    if benchmark is not None:
        result = benchmark.pedantic(once, rounds=1, iterations=1)
    else:
        result = once()
    path = ResultStore(out_dir or RESULTS_DIR).save(result)
    # Mirror into the atlas when REPRO_ATLAS names a database.  Store
    # only — no pre-dispatch lookup — so bench timings always measure a
    # real run and never an sqlite read.
    atlas_path = os.environ.get("REPRO_ATLAS")
    if atlas_path:
        from repro.scenarios import AtlasStore

        with AtlasStore(atlas_path) as atlas:
            atlas.save(result)
    print(f"\n==== {name} ====\n{result.table()}\n-> {path}\n")
    return result


def record_json(name: str, payload: dict, directory: pathlib.Path | None = None) -> pathlib.Path:
    """Persist a machine-readable result to <directory>/<name>.json.

    Defaults to the repo root (rather than benchmarks/results/) so the
    perf trajectory is versioned alongside the code and future PRs can
    diff it; callers that must not dirty the working tree (the tier-1
    smoke test) pass their own directory.
    """
    path = (directory or REPO_ROOT) / f"{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(f"\n==== {name} ====\n{text}\n")
    path.write_text(text + "\n")
    return path
