"""E2 — Figure 2 / Theorem 4.1: the O(log ℓ + log log n) algorithm.

Regenerates the upper bound's success claim: 100% rendezvous over feasible
(non perfectly symmetrizable) start pairs across the tree families the
paper discusses — lines (symmetric contraction), complete binary and
binomial trees (topologically symmetric leaf pairs), and random trees.
"""

import random

from _util import record

from repro.analysis import success_sweep
from repro.trees import (
    binomial_tree,
    complete_binary_tree,
    line,
    random_relabel,
    random_tree,
    subdivide,
)


def _families():
    rng = random.Random(17)
    return {
        "lines": [random_relabel(line(m), rng) for m in (7, 12, 21)],
        "binary": [random_relabel(complete_binary_tree(h), rng) for h in (2, 3)],
        "binomial": [random_relabel(binomial_tree(k), rng) for k in (3, 4)],
        "random": [random_relabel(random_tree(20, rng), rng) for _ in range(3)],
        "subdivided": [
            random_relabel(subdivide(complete_binary_tree(2), t), rng)
            for t in (3, 6)
        ],
    }


def test_thm41_success_rates(benchmark):
    def sweep():
        out = {}
        for name, trees in _families().items():
            points = success_sweep(trees, pairs_per_tree=3)
            out[name] = points
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines_out = [f"{'family':>12} {'runs':>5} {'met':>5} {'max round':>10}"]
    all_ok = True
    for name, points in results.items():
        met = sum(p.met for p in points)
        all_ok &= met == len(points)
        worst = max((p.meeting_round for p in points), default=0)
        lines_out.append(f"{name:>12} {len(points):>5} {met:>5} {worst:>10}")
    record("E2_thm41_success", "\n".join(lines_out))
    assert all_ok
