"""E2 — Figure 2 / Theorem 4.1: the O(log ℓ + log log n) algorithm.

Regenerates the upper bound's success claim: 100% rendezvous over feasible
(non perfectly symmetrizable) start pairs across the tree families the
paper discusses — lines (symmetric contraction), complete binary and
binomial trees (topologically symmetric leaf pairs), and random trees.
"""

from _util import run_scenario


def test_thm41_success_rates(benchmark):
    result = run_scenario("success-families", benchmark)
    assert result.ok
    for row in result.rows:
        assert row["met"] == row["runs"], row
