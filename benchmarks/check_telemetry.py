"""Telemetry smoke gate: validate an instrumented scenario result.

``make telemetry-smoke`` runs a kernel-eligible registry scenario with
``--telemetry --save`` and hands the saved JSON payload to this script,
which asserts the observability contract end to end:

- the payload still passes ``store.validate_payload`` (the telemetry
  block is schema-checked, rows are untouched);
- the telemetry block reports the dispatched backend tier
  (``backend.dispatch.*`` counters) — never a silent degrade;
- the per-phase span durations account for the run's recorded
  ``elapsed_seconds`` within tolerance (10% + a jitter floor);
- with ``--expect-cache-hits``, the kernel successor-table cache
  reported at least one hit (memo or disk) — the warm-cache leg of the
  smoke proves the on-disk cache actually round-trips across processes;
- with ``--expect-disk-hits``, specifically ``kernel.table.disk_hit``
  must be positive (the CI kernel-cache gate: a fresh process can only
  hit *disk*, so this proves the persisted cache was actually read);
- with ``--expect-events PATH``, the JSONL event stream at PATH parses
  and is non-empty.

``make atlas-smoke`` adds the memoization contract via ``--expect-atlas``:

- ``--expect-atlas=miss``: the payload's telemetry block recorded an
  ``atlas.miss`` event and the usual dispatch/phase checks hold (the
  run really computed);
- ``--expect-atlas=hit``: an atlas hit returns the *stored payload
  verbatim* — its embedded telemetry (if any) describes the original
  run — so the hit is judged from the live JSONL stream instead
  (``--expect-events`` required): an ``atlas.hit`` event must be
  present, and there must be zero backend activity — no ``execute``
  phase span, no ``backend.*`` event of any kind.

Exit status: 0 = contract holds, 1 = violation, 2 = unusable input.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# tolerance for |sum(phases) - elapsed_seconds|: 10% of elapsed plus a
# floor for sub-millisecond runs where rounding dominates
RELATIVE_TOLERANCE = 0.10
JITTER_FLOOR = 0.05


def fail(msg: str) -> int:
    print(f"FAIL: {msg}")
    return 1


def _validate(payload: dict) -> int:
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
    from repro.scenarios.spec import ScenarioError
    from repro.scenarios.store import validate_payload

    try:
        validate_payload(payload)
    except ScenarioError as exc:
        return fail(f"payload failed store validation: {exc}")
    return 0


def check_payload(
    payload: dict,
    expect_cache_hits: bool,
    expect_disk_hits: bool = False,
    expect_atlas_miss: bool = False,
) -> int:
    if _validate(payload):
        return 1

    telemetry = payload.get("telemetry")
    if telemetry is None:
        return fail("payload carries no telemetry block (was --telemetry passed?)")

    counters = telemetry.get("counters", {})
    tiers = sorted(k for k in counters if k.startswith("backend.dispatch."))
    if not tiers:
        return fail("no backend.dispatch.* counters: the run never reported its tier")
    print(f"dispatch tiers: {', '.join(f'{t}={counters[t]}' for t in tiers)}")

    elapsed = float(payload["timings"]["elapsed_seconds"])
    phases = telemetry.get("phases", {})
    if "execute" not in phases:
        return fail(f"no execute phase in {sorted(phases)}")
    total = sum(float(v) for v in phases.values())
    tolerance = max(RELATIVE_TOLERANCE * elapsed, JITTER_FLOOR)
    if abs(total - elapsed) > tolerance:
        return fail(
            f"phase durations sum to {total:.4f}s but elapsed_seconds is "
            f"{elapsed:.4f}s (tolerance {tolerance:.4f}s)"
        )
    print(f"phases {sorted(phases)} sum {total:.4f}s vs elapsed {elapsed:.4f}s: ok")

    if expect_cache_hits:
        hits = counters.get("kernel.table.memo_hit", 0) + counters.get(
            "kernel.table.disk_hit", 0
        )
        if hits < 1:
            return fail(
                "expected kernel table cache hits, saw none "
                f"(kernel counters: { {k: v for k, v in counters.items() if k.startswith('kernel.')} })"
            )
        print(
            f"kernel table cache hits: memo={counters.get('kernel.table.memo_hit', 0)} "
            f"disk={counters.get('kernel.table.disk_hit', 0)}"
        )

    if expect_disk_hits:
        disk = counters.get("kernel.table.disk_hit", 0)
        if disk < 1:
            return fail(
                "expected kernel.table.disk_hit > 0 (persisted cache never read; "
                f"kernel counters: { {k: v for k, v in counters.items() if k.startswith('kernel.')} })"
            )
        print(f"kernel table disk hits: {disk}")

    if expect_atlas_miss:
        events = telemetry.get("events", {})
        if events.get("atlas.miss", 0) < 1:
            return fail(
                f"expected an atlas.miss event, saw events {sorted(events)}"
            )
        print(f"atlas miss recorded: atlas.miss={events['atlas.miss']}")
    return 0


def check_atlas_hit(payload: dict, events_path: pathlib.Path) -> int:
    """The warm leg: the payload is the stored (cold) payload verbatim, so
    only structural validation applies to it; the hit itself is proven
    from the live event stream — atlas.hit fired, and nothing that could
    only happen under a backend dispatch (the execute phase span, any
    backend.* event) appears."""
    if _validate(payload):
        return 1
    from repro.telemetry import read_events

    records, skipped = read_events(events_path)
    if not records:
        return fail(f"event stream {events_path} is empty")
    if skipped:
        return fail(f"event stream {events_path} has {skipped} unparseable lines")
    hits = [r for r in records if r.get("event") == "atlas.hit"]
    if not hits:
        return fail(
            "expected an atlas.hit event in the live stream, saw "
            f"{sorted({r.get('event') for r in records})}"
        )
    executed = [
        r for r in records
        if r.get("event") == "span" and r.get("name") == "execute"
    ]
    if executed:
        return fail("atlas hit still ran the execute phase — memoization leaked a dispatch")
    backend = [r for r in records if str(r.get("event", "")).startswith("backend.")]
    if backend:
        return fail(
            f"atlas hit emitted backend events: {sorted({r['event'] for r in backend})}"
        )
    print(
        f"atlas hit verified from {len(records)} live events: "
        "atlas.hit present, no execute span, no backend.* events"
    )
    return 0


def check_events(path: pathlib.Path) -> int:
    from repro.telemetry import read_events

    records, skipped = read_events(path)
    if not records:
        return fail(f"event stream {path} is empty")
    if skipped:
        return fail(f"event stream {path} has {skipped} unparseable lines")
    print(f"event stream: {len(records)} events, 0 skipped")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("payload", help="saved scenario result JSON")
    parser.add_argument("--expect-cache-hits", action="store_true",
                        help="require kernel table cache hits > 0")
    parser.add_argument("--expect-disk-hits", action="store_true",
                        help="require kernel.table.disk_hit > 0 (persisted cache)")
    parser.add_argument("--expect-atlas", choices=("hit", "miss"), default=None,
                        help="assert the atlas memoization leg (hit needs --expect-events)")
    parser.add_argument("--expect-events", default=None, metavar="PATH",
                        help="require a non-empty, fully-parseable JSONL stream")
    args = parser.parse_args(argv)

    path = pathlib.Path(args.payload)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"unusable payload {path}: {exc}")
        return 2

    if args.expect_atlas == "hit":
        if not args.expect_events:
            print("--expect-atlas=hit requires --expect-events (hit is judged "
                  "from the live stream, not the cached payload)")
            return 2
        status = check_atlas_hit(payload, pathlib.Path(args.expect_events))
    else:
        status = check_payload(
            payload,
            args.expect_cache_hits,
            expect_disk_hits=args.expect_disk_hits,
            expect_atlas_miss=args.expect_atlas == "miss",
        )
        if status == 0 and args.expect_events:
            status = check_events(pathlib.Path(args.expect_events))
    if status == 0:
        print("telemetry contract: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
