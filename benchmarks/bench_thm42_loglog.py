"""E5 — Theorem 4.2: the simultaneous-start adversary on lines.

Regenerates the Ω(log log n) evidence: for concrete agents, the certified
defeating line of length x + x' + 1 derived from the transition digraph
(γ = lcm of circuit lengths).  The shape target: defeating size is
O(|S|^|S|)-ish in the worst case and grows with γ — so memory must grow
like log log n.
"""

import random

from _util import record

from repro.agents import alternator, pausing_walker, random_line_automaton
from repro.analysis import thm42_size_vs_bits
from repro.lowerbounds import build_thm42_instance


def test_thm42_random_pool(benchmark):
    rows = benchmark.pedantic(
        thm42_size_vs_bits, kwargs={"seed": 11, "states": (2, 3, 4, 5)},
        rounds=1, iterations=1,
    )
    text = f"{'bits':>5} {'edges':>6} {'kind':>9} {'gamma':>6}\n" + "\n".join(
        f"{b:>5} {e:>6} {k:>9} {g:>6}" for b, e, k, g in rows
    )
    record("E5_thm42_random", text)
    assert rows


def test_thm42_structured_agents(benchmark):
    def sweep():
        out = []
        for name, agent in [
            ("alternator", alternator()),
            ("pausing(1)", pausing_walker(1)),
            ("pausing(2)", pausing_walker(2)),
            ("pausing(3)", pausing_walker(3)),
        ]:
            inst = build_thm42_instance(agent)
            out.append((name, agent.memory_bits, inst.gamma, inst.x, inst.x_prime,
                        inst.line_edges, inst.kind))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'agent':>12} {'bits':>5} {'gamma':>6} {'x':>5} {'x^':>5} {'edges':>6} {'kind':>9}"
    text = header + "\n" + "\n".join(
        f"{n:>12} {b:>5} {g:>6} {x:>5} {xp:>5} {e:>6} {k:>9}"
        for n, b, g, x, xp, e, k in rows
    )
    record("E5_thm42_structured", text)
    # defeating-line size grows with the pausing period (γ grows)
    edges = [e for n, b, g, x, xp, e, k in rows if n.startswith("pausing")]
    assert edges == sorted(edges)
