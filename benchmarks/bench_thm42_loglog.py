"""E5 — Theorem 4.2: the simultaneous-start adversary on lines.

Regenerates the Ω(log log n) evidence: for concrete agents, the certified
defeating line of length x + x' + 1 derived from the transition digraph
(γ = lcm of circuit lengths).  The shape target: defeating size is
O(|S|^|S|)-ish in the worst case and grows with γ — so memory must grow
like log log n.
"""

from _util import run_scenario


def test_thm42_random_pool(benchmark):
    result = run_scenario("thm42-random", benchmark)
    assert result.ok
    assert result.rows


def test_thm42_structured_agents(benchmark):
    result = run_scenario("thm42-sweep", benchmark)
    assert result.ok
    assert all(row["certified"] for row in result.rows)
