"""E8 — Fact 2.1: Procedure Explo's outputs and cost.

Explo must return the tree size, the center classification, and the
basic-walk step counts — in exactly 2(n-1) rounds from any branching start.
This bench measures the cost curve and cross-checks outputs against ground
truth on random trees.
"""

import random

from _util import record

from repro.agents import NULL_PORT, Ctx, Registers
from repro.core import explo_bis_routine
from repro.trees import (
    contract,
    find_center,
    port_preserving_automorphism,
    random_relabel,
    random_tree,
)


def _run_explo(tree, start):
    ctx = Ctx(NULL_PORT, tree.degree(start))
    regs = Registers()
    gen = explo_bis_routine(ctx, regs)
    pos = start
    rounds = 0
    try:
        action = next(gen)
        while True:
            if action == -1:
                obs = (NULL_PORT, tree.degree(pos))
            else:
                pos, in_port = tree.move(pos, action % tree.degree(pos))
                obs = (in_port, tree.degree(pos))
            rounds += 1
            action = gen.send(obs)
    except StopIteration as stop:
        return stop.value, rounds


def test_explo_cost_and_correctness(benchmark):
    def sweep():
        rng = random.Random(3)
        rows = []
        for n in (10, 20, 40, 80, 160):
            tree = random_relabel(random_tree(n, rng), rng)
            start = next(v for v in range(tree.n) if tree.degree(v) != 2)
            result, rounds = _run_explo(tree, start)
            # ground truth checks
            tprime = contract(tree).contracted
            center = find_center(tprime)
            expected = (
                "central_node"
                if center.is_node
                else (
                    "central_edge_symmetric"
                    if port_preserving_automorphism(tprime) is not None
                    else "central_edge_asymmetric"
                )
            )
            assert result.kind == expected
            assert result.n == tree.n
            rows.append((n, rounds, 2 * (n - 1), result.nu, result.kind))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'n':>5} {'rounds':>7} {'2(n-1)':>7} {'nu':>4} kind"
    text = header + "\n" + "\n".join(
        f"{n:>5} {r:>7} {e:>7} {nu:>4} {k}" for n, r, e, nu, k in rows
    )
    record("E8_explo", text)
    for n, rounds, expected, _nu, _k in rows:
        assert rounds == expected
