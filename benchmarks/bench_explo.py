"""E8 — Fact 2.1: Procedure Explo's outputs and cost.

Explo must return the tree size, the center classification, and the
basic-walk step counts — in exactly 2(n-1) rounds from any branching start.
This bench measures the cost curve and cross-checks outputs against ground
truth on random trees (the ground-truth comparison lives in the
``explo_cost`` executor).
"""

from _util import run_scenario


def test_explo_cost_and_correctness(benchmark):
    result = run_scenario("explo-cost", benchmark)
    assert result.ok
    for row in result.rows:
        assert row["rounds"] == row["expected"], row
