"""E-lowering — register programs as compiled-backend citizens.

Measures the program-lowering subsystem (PR 4) on the workloads that
motivated it:

1. *success-families grid*: every feasible start pair of the registry's
   ``success-families`` tree families, decided by the reference engine
   vs the lowered traced backend (:mod:`repro.sim.traced` — shared solo
   traces, mirror traces, suffix links).  Verdict parity is asserted
   pair by pair; the headline number is the wall-clock speedup.
2. *lowered verify-small grid*: ``verify-small`` run end to end on
   ``--backend compiled`` through the shared scenario harness, persisted
   to ``benchmarks/results/verify-small.json``; the checked-in golden
   under ``benchmarks/results/golden/`` pins its rows (and, because the
   golden test re-runs the scenario on the default backend, pins
   cross-backend row parity in CI).

The lowering section is recorded into ``BENCH_engine.json`` next to the
PR 1 engine numbers so the perf trajectory stays in one file.  Run
directly (``python benchmarks/bench_lowering.py [--quick]``), via
``make bench-smoke``, or through pytest-benchmark; the tier-1 suite
exercises the quick mode through ``tests/sim/test_bench_smoke.py``.
"""

import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for import under pytest/importlib

from _util import REPO_ROOT, record_json, run_scenario

QUICK_FAMILIES = ("binary", "random", "subdivided")


def _grid():
    """The success-families rendezvous grid: the scenario's exact trees
    (same derived seeds and relabelings), all feasible start pairs."""
    from repro.core.rendezvous import estimate_round_budget
    from repro.scenarios import get_scenario
    from repro.scenarios.spec import build_tree
    from repro.sim.batch import derive_seed
    from repro.trees.automorphism import perfectly_symmetrizable
    from repro.trees.labelings import random_relabel

    spec = get_scenario("success-families")
    for family, tree_specs in spec.param("families").items():
        for idx, tree_spec in enumerate(tree_specs):
            seed = derive_seed(spec.seed, family, idx)
            tree = random_relabel(build_tree(tree_spec, seed), random.Random(seed))
            pairs = [
                (u, v)
                for u in range(tree.n)
                for v in range(u + 1, tree.n)
                if not perfectly_symmetrizable(tree, u, v)
            ]
            yield family, tree_spec, tree, estimate_round_budget(tree, 10), pairs


def _success_grid_speedup(quick: bool) -> dict:
    from repro.core import rendezvous_agent
    from repro.sim import run_rendezvous
    from repro.sim.traced import run_rendezvous_traced

    grids = [
        g for g in _grid() if not quick or g[0] in QUICK_FAMILIES
    ]
    pairs = sum(len(g[4]) for g in grids)
    rounds = 2 if quick else 3

    # best-of-N on both sides irons out scheduler noise; every lowered
    # round uses a fresh prototype, i.e. a cold trace cache — the
    # recorded speedup never rides a warm cache.
    lowered_s = reference_s = float("inf")
    lowered = reference = None
    for _ in range(rounds):
        proto = rendezvous_agent(max_outer=10)
        t0 = time.perf_counter()
        lowered = [
            run_rendezvous_traced(tree, proto, u, v, max_rounds=budget)
            for _f, _s, tree, budget, ps in grids
            for u, v in ps
        ]
        lowered_s = min(lowered_s, time.perf_counter() - t0)

        proto_ref = rendezvous_agent(max_outer=10)
        t0 = time.perf_counter()
        reference = [
            run_rendezvous(tree, proto_ref, u, v, max_rounds=budget)
            for _f, _s, tree, budget, ps in grids
            for u, v in ps
        ]
        reference_s = min(reference_s, time.perf_counter() - t0)

    match = all(
        (a.met, a.meeting_round, a.meeting_node, a.crossings)
        == (b.met, b.meeting_round, b.meeting_node, b.crossings)
        for a, b in zip(reference, lowered)
    )
    return {
        "instance": f"success-families grid, all feasible pairs ({pairs} runs)"
                    + (" [quick subset]" if quick else ""),
        "pairs": pairs,
        "met": sum(o.met for o in reference),
        "timing": f"best of {rounds}",
        "reference_seconds": round(reference_s, 4),
        "lowered_seconds": round(max(lowered_s, 1e-9), 4),
        "speedup": round(reference_s / max(lowered_s, 1e-9), 2),
        "verdicts_match": match,
    }


def _lowered_verify(quick: bool, out_dir: Path | None):
    params = {"max_n": 5} if quick else None
    result = run_scenario(
        "verify-small", out_dir=out_dir, backend="compiled", params=params
    )
    assert result.ok, "lowered verify-small failed its own acceptance check"
    return result


def main(quick: bool = False, out_dir: Path | None = None) -> dict:
    verify = _lowered_verify(quick, out_dir)
    section = {
        "quick": quick,
        "success_families_grid": _success_grid_speedup(quick),
        "verify_small": {
            "backend": verify.backend,
            "params": dict(verify.spec.params),
            "rows": verify.rows,
            "elapsed_seconds": round(verify.elapsed_seconds, 4),
        },
    }
    # merge into the engine benchmark's trajectory file
    target = (out_dir or REPO_ROOT) / "BENCH_engine.json"
    payload = json.loads(target.read_text()) if target.exists() else {
        "bench": "engine-backends"
    }
    payload["lowering"] = section
    record_json("BENCH_engine", payload, out_dir)
    return section


def test_lowering_speedup(benchmark):
    section = benchmark.pedantic(main, rounds=1, iterations=1)
    grid = section["success_families_grid"]
    assert grid["verdicts_match"], "lowered grid diverged from the reference"
    assert grid["speedup"] >= 5, f"expected >= 5x, got {grid['speedup']}x"


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
