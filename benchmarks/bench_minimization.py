"""Honest-bits checks: minimized state counts, victims and lowered programs.

The lower-bound curves plot "memory bits" = ceil(log2 K); that is only fair
if K is minimal.  Two scenarios enforce it:

1. ``minimization`` — the victim families: every structured walker is
   minimized and must be (nearly) incompressible, or E1's x-axis would
   be inflated.
2. ``atlas-programs`` — the lowered grid: every library register program
   is lowered (route-A machine-state enumeration or route-B traced
   lassos), minimized over its lowering alphabet, circuit-profiled, and
   paired with the lower-bound floors.  The minimized column is the
   honest "memory bits" for compiled programs; the Theorem 4.1 agent's
   cells must shrink strictly (its traces share their steady-state
   suffix across starts — the dead-state release PR 4 shipped).

The atlas run persists ``benchmarks/results/atlas-programs.json``; the
checked-in golden under ``benchmarks/results/golden/`` pins its rows
(and, because the golden test re-runs on the default backend while CI's
golden-diff job replays it through ``repro scenarios diff``, pins
cross-backend row parity too).
"""

from _util import run_scenario


def test_victims_are_near_minimal(benchmark):
    result = run_scenario("minimization", benchmark)
    assert result.ok
    for row in result.rows:
        assert row["minimal"] >= row["states"] // 2, row


def test_lowered_grid_minimizes(benchmark):
    result = run_scenario("atlas-programs", benchmark)
    assert result.ok
    for row in result.rows:
        assert row["min_states"] <= row["raw_states"], row
    thm41 = [r for r in result.rows if r["program"] == "thm41"]
    assert thm41, "the atlas grid must cover the Theorem 4.1 agent"
    for row in thm41:
        # strict shrink: the dead-stage-1 release makes sibling traces
        # share their steady-state suffix, and minimization must find it
        assert row["min_states"] < row["raw_states"], row


if __name__ == "__main__":
    run_scenario("minimization")
    run_scenario("atlas-programs")
