"""Honest-bits check: minimized state counts of the victim families.

The lower-bound curves plot "memory bits" = ceil(log2 K); that is only fair
if K is minimal.  This bench minimizes every victim family member and
reports original vs minimal states — the counting walkers must be (nearly)
incompressible, or E1's x-axis would be inflated.
"""

from _util import record

from repro.agents import (
    alternator,
    compile_walker,
    counting_walker,
    minimize_line_automaton,
    pausing_walker,
)


def test_victims_are_near_minimal(benchmark):
    def sweep():
        rows = []
        victims = [
            ("alternator", alternator()),
            ("pausing(2)", pausing_walker(2)),
            ("pausing(3)", pausing_walker(3)),
            ("counting(2)", counting_walker(2)),
            ("counting(3)", counting_walker(3)),
            ("dsl F3 B1", compile_walker("F3 B1")),
            ("dsl F5 P2 B1", compile_walker("F5 P2 B1")),
        ]
        for name, agent in victims:
            res = minimize_line_automaton(agent)
            rows.append((name, res.original_states, res.minimal_states))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'agent':>14} {'states':>7} {'minimal':>8}"
    text = header + "\n" + "\n".join(
        f"{n:>14} {o:>7} {m:>8}" for n, o, m in rows
    )
    record("HON_minimization", text)
    for name, original, minimal in rows:
        assert minimal >= original // 2, (name, original, minimal)
