"""Honest-bits check: minimized state counts of the victim families.

The lower-bound curves plot "memory bits" = ceil(log2 K); that is only fair
if K is minimal.  This bench minimizes every victim family member and
reports original vs minimal states — the counting walkers must be (nearly)
incompressible, or E1's x-axis would be inflated.
"""

from _util import run_scenario


def test_victims_are_near_minimal(benchmark):
    result = run_scenario("minimization", benchmark)
    assert result.ok
    for row in result.rows:
        assert row["minimal"] >= row["states"] // 2, row
