"""E3 — Theorem 4.1 memory scaling: O(log ℓ + log log n), measured.

Two curves:

- bits vs n at fixed ℓ = 4 (subdivided complete binary trees): must be
  essentially flat (the log log n term is sub-resolution at laptop scale);
- bits vs ℓ at roughly fixed n (double brooms): must grow like log ℓ
  (a constant increment per doubling of ℓ).
"""

from _util import record

from repro.analysis import memory_vs_leaves, memory_vs_n_fixed_leaves


def test_memory_flat_in_n(benchmark):
    series, points = benchmark.pedantic(
        memory_vs_n_fixed_leaves,
        kwargs={"subdivisions": (0, 1, 3, 7, 15, 31)},
        rounds=1,
        iterations=1,
    )
    text = series.table("n (ℓ = 4 fixed)", "declared bits")
    record("E3a_memory_vs_n", text)
    assert all(p.met for p in points)
    assert max(series.ys) - min(series.ys) <= 4


def test_memory_log_in_leaves(benchmark):
    series, points = benchmark.pedantic(
        memory_vs_leaves,
        kwargs={"leaf_counts": (4, 8, 16, 32), "total_nodes": 120},
        rounds=1,
        iterations=1,
    )
    text = series.table("leaves (n ~ fixed)", "declared bits")
    diffs = [b - a for a, b in zip(series.ys, series.ys[1:])]
    text += f"\nincrement per doubling of ℓ: {diffs}"
    record("E3b_memory_vs_leaves", text)
    assert all(p.met for p in points)
    assert all(d > 0 for d in diffs)
