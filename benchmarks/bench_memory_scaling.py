"""E3 — Theorem 4.1 memory scaling: O(log ℓ + log log n), measured.

Two curves:

- bits vs n at fixed ℓ = 4 (subdivided complete binary trees): must be
  essentially flat (the log log n term is sub-resolution at laptop scale);
- bits vs ℓ at roughly fixed n (double brooms): must grow like log ℓ
  (a constant increment per doubling of ℓ).
"""

from _util import run_scenario


def test_memory_flat_in_n(benchmark):
    result = run_scenario("memory-vs-n", benchmark)
    assert result.ok
    assert result.summary["bits_spread"] <= 4


def test_memory_log_in_leaves(benchmark):
    result = run_scenario("memory-vs-leaves", benchmark)
    assert result.ok
    assert all(row["met"] for row in result.rows)
