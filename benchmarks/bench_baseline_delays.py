"""Supplementary E7 — the arbitrary-delay baseline's delay robustness.

The defining property of the Θ(log n) scenario: meeting must survive ANY
delay.  This bench sweeps θ over three orders of magnitude on a fixed
instance and reports meeting rounds — they grow additively in θ (the
sleeping phase) plus a bounded label-multiplexing tail, never diverging.
"""

from _util import record

from repro.core import baseline_agent
from repro.sim import run_rendezvous
from repro.trees import edge_colored_line


def test_baseline_delay_sweep(benchmark):
    t = edge_colored_line(16)
    u, v = 1, 10

    def sweep():
        rows = []
        for delay in (0, 1, 7, 31, 127, 511):
            for delayed in (1, 2):
                out = run_rendezvous(
                    t, baseline_agent(), u, v,
                    delay=delay, delayed=delayed, max_rounds=200_000,
                )
                assert out.met, (delay, delayed)
                rows.append((delay, delayed, out.meeting_round))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'delay':>7} {'delayed':>8} {'meeting round':>14}"
    text = header + "\n" + "\n".join(
        f"{d:>7} {a:>8} {r:>14}" for d, a, r in rows
    )
    record("E7b_baseline_delays", text)
    # meeting time grows at most ~linearly in the delay
    by_delay = {d: r for d, a, r in rows if a == 2}
    assert by_delay[511] <= by_delay[0] + 511 + 40_000
