"""Supplementary E7 — the arbitrary-delay baseline's delay robustness.

The defining property of the Θ(log n) scenario: meeting must survive ANY
delay.  This bench sweeps θ over three orders of magnitude on a fixed
instance and reports meeting rounds — they grow additively in θ (the
sleeping phase) plus a bounded label-multiplexing tail, never diverging.
"""

from _util import run_scenario


def test_baseline_delay_sweep(benchmark):
    result = run_scenario("baseline-delays", benchmark)
    assert result.ok
    # meeting time grows at most ~linearly in the delay
    by_delay = {r["delay"]: r["round"] for r in result.rows if r["delayed"] == 2}
    assert by_delay[511] <= by_delay[0] + 511 + 40_000
