"""E-gathering — the k-agent gathering sweep workload (§1.3 extension).

Regenerates the gathering grids from the scenario registry: tree family
× start sets × per-agent delay vectors, decided exactly by the joint-
configuration solver (:func:`repro.sim.gathering_solver.solve_gathering`
— the k-agent generalization of the all-delays batch solver).  Every
verdict is ``met`` or ``certified-never``; an ``undecided`` row would
fail the run.

Results go to ``benchmarks/results/<scenario>.json`` through the shared
harness; a checked-in golden sample lives under
``benchmarks/results/golden/`` and is enforced by
``tests/scenarios/test_scenario_store.py``.  Run directly
(``python benchmarks/bench_gathering.py [--quick]``), via
``make bench-smoke``, or through pytest-benchmark like the other
benchmarks; the tier-1 suite exercises the quick mode through
``tests/sim/test_bench_smoke.py``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for import under pytest/importlib

from _util import run_scenario

SCENARIOS = [
    "gathering-line-k3",
    "gathering-line-k4",
    "gathering-spider-k3",
    "gathering-binary-k4",
]


def main(quick: bool = False, out_dir: Path | None = None) -> dict:
    """Run the gathering grids; quick mode covers one scenario."""
    results = {}
    for name in SCENARIOS[:1] if quick else SCENARIOS:
        result = run_scenario(name, out_dir=out_dir)
        assert result.ok, f"{name} left adversary choices undecided"
        results[name] = result
    return results


def test_gathering_line_k3(benchmark):
    result = run_scenario("gathering-line-k3", benchmark)
    assert result.ok
    assert result.summary["met"] >= 1
    assert result.summary["certified_never"] >= 1
    assert result.summary["undecided"] == 0


def test_gathering_binary_k4(benchmark):
    result = run_scenario("gathering-binary-k4", benchmark)
    assert result.ok
    assert result.summary["undecided"] == 0


def test_gathering_sweep_reference_parity(benchmark):
    # The acceptance seam, measured: the same grid on the oracle engine.
    result = run_scenario("gathering-spider-k3", benchmark, backend="reference")
    assert result.ok
    from repro.scenarios import Runner

    assert result.rows == Runner().run("gathering-spider-k3").rows


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
