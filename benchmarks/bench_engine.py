"""E-engine — the two simulation backends and the all-delays batch solver.

Measures, on fixed deterministic instances:

1. *Throughput*: rounds/second of the reference engine vs the compiled
   table-driven backend on one long finite-state run.
2. *Delay sweep*: wall time of a per-delay reference-engine sweep
   (θ = 0..Θ, both delayed-agent choices, certified) vs one
   :func:`repro.sim.solve_all_delays` pass over the product configuration
   graph — the headline optimisation: the batch solver shares every joint
   configuration's fate across all delays.

Results go to ``BENCH_engine.json`` at the repo root (via
``_util.record_json``) so successive PRs accumulate a perf trajectory.
Run directly (``python benchmarks/bench_engine.py [--quick]``), via
``make bench-smoke``, or through pytest-benchmark like the other
benchmarks.  The tier-1 suite exercises the quick mode through
``tests/sim/test_bench_smoke.py``.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for import under pytest/importlib

from _util import record_json

from repro.agents import counting_walker, pausing_walker
from repro.sim import run_rendezvous, run_rendezvous_compiled, solve_all_delays
from repro.trees import edge_colored_line


def _throughput(quick: bool) -> dict:
    tree = edge_colored_line(33 if quick else 65)
    agent = counting_walker(3 if quick else 5)
    u, v = 1, tree.n - 2
    budget = 60_000 if quick else 400_000

    t0 = time.perf_counter()
    ref = run_rendezvous(tree, agent, u, v, max_rounds=budget)
    t1 = time.perf_counter()
    cmp_ = run_rendezvous_compiled(tree, agent, u, v, max_rounds=budget)
    t2 = time.perf_counter()
    assert (ref.met, ref.meeting_round) == (cmp_.met, cmp_.meeting_round)
    rounds = ref.rounds_executed
    ref_rps = rounds / max(t1 - t0, 1e-9)
    cmp_rps = rounds / max(t2 - t1, 1e-9)
    return {
        "instance": f"counting_walker on colored line n={tree.n}, {rounds} rounds",
        "rounds": rounds,
        "reference_rounds_per_sec": round(ref_rps),
        "compiled_rounds_per_sec": round(cmp_rps),
        "speedup": round(cmp_rps / ref_rps, 2),
    }


def _delay_sweep(quick: bool) -> dict:
    tree = edge_colored_line(21 if quick else 41)
    agent = pausing_walker(2)
    u, v = 1, tree.n - 3
    max_delay = 127 if quick else 511
    budget = 500_000

    t0 = time.perf_counter()
    reference = {}
    for theta in range(max_delay + 1):
        for side in (2,) if theta == 0 else (1, 2):
            out = run_rendezvous(
                tree, agent, u, v,
                delay=theta, delayed=side, max_rounds=budget, certify=True,
            )
            reference[(theta, side)] = (out.met, out.meeting_round, out.certified_never)
    t1 = time.perf_counter()
    verdicts = solve_all_delays(tree, agent, u, v, max_delay=max_delay)
    t2 = time.perf_counter()

    match = all(
        reference[(dv.delay, dv.delayed)]
        == (dv.met, dv.meeting_round, dv.certified_never)
        for dv in verdicts
        if (dv.delay, dv.delayed) in reference
    )
    ref_s, batch_s = t1 - t0, max(t2 - t1, 1e-9)
    return {
        "instance": f"pausing_walker(2) on colored line n={tree.n}",
        "max_delay": max_delay,
        "per_delay_runs": len(reference),
        "reference_seconds": round(ref_s, 4),
        "batch_solver_seconds": round(batch_s, 4),
        "speedup": round(ref_s / batch_s, 1),
        "verdicts_match": match,
    }


def main(quick: bool = False, out_dir: Path | None = None) -> dict:
    import json

    from _util import REPO_ROOT

    # merge into the existing trajectory file: bench_lowering.py records
    # its own "lowering" section into the same JSON
    target = (out_dir or REPO_ROOT) / "BENCH_engine.json"
    payload = json.loads(target.read_text()) if target.exists() else {}
    payload.update(
        {
            "bench": "engine-backends",
            "quick": quick,
            "throughput": _throughput(quick),
            "delay_sweep": _delay_sweep(quick),
        }
    )
    record_json("BENCH_engine", payload, out_dir)
    return payload


def test_engine_backends(benchmark):
    payload = benchmark.pedantic(main, rounds=1, iterations=1)
    assert payload["delay_sweep"]["verdicts_match"]
    assert payload["delay_sweep"]["speedup"] >= 5


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
