"""E-kernel — the vectorized frontier kernel vs the dict solvers.

Measures the bit-parallel sweep kernel (:mod:`repro.sim.kernel`) on the
two workloads that motivated it:

1. *511-delay sweep* (PR 1's ``delay_sweep`` instance): reference
   per-delay loop vs the dict product solver vs the kernel, all three
   decided exactly.  One pair shares most of its trajectory work across
   delays, so the dict solver is already strong here — the kernel's win
   is modest and recorded honestly.
2. *success-families grid*: the registry's ``success-families`` trees,
   every feasible start pair swept over θ = 0..8 with a lowered
   register program — the grid workload the kernel exists for.  Dict
   solver decides pair by pair; the kernel decides each tree's whole
   pair grid in one frontier pass.  Verdict parity is asserted
   row-for-row against the dict solver and spot-checked against
   certified reference runs.

A third subsection times the successor-table cache: cold vectorized
build vs memmap reload of the same tables through ``REPRO_KERNEL_CACHE``.

The ``kernel`` section is merged into ``BENCH_engine.json`` next to the
engine and lowering numbers.  Run directly
(``python benchmarks/bench_kernel.py [--quick]``), via
``make bench-smoke``, or through pytest-benchmark; the tier-1 suite
exercises the quick mode through ``tests/sim/test_bench_smoke.py``.
"""

import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for import under pytest/importlib

from _util import REPO_ROOT, record_json

QUICK_FAMILIES = ("binary", "random", "subdivided")
GRID_MAX_DELAY = 8


def _sweep(quick: bool) -> dict:
    """Reference vs dict solver vs kernel on the long single-pair sweep."""
    from repro.agents.library import pausing_walker
    from repro.sim import run_rendezvous, solve_all_delays, solve_all_delays_kernel
    from repro.sim import kernel as kernel_mod
    from repro.trees import edge_colored_line

    tree = edge_colored_line(21 if quick else 41)
    agent = pausing_walker(2)
    u, v = 1, tree.n - 3
    max_delay = 127 if quick else 511
    budget = 500_000
    rounds = 2 if quick else 3

    t0 = time.perf_counter()
    reference = {}
    for theta in range(max_delay + 1):
        for side in (2,) if theta == 0 else (1, 2):
            out = run_rendezvous(
                tree, agent, u, v,
                delay=theta, delayed=side, max_rounds=budget, certify=True,
            )
            reference[(theta, side)] = (out.met, out.meeting_round, out.certified_never)
    ref_s = time.perf_counter() - t0

    kernel_mod.agent_table(agent, tree)  # warm tables on both sides:
    # the dict solver's compiled tables are cached too, and the cold
    # build cost is recorded separately under table_cache
    dict_s = kern_s = float("inf")
    dict_v = kern_v = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        dict_v = solve_all_delays(tree, agent, u, v, max_delay=max_delay)
        dict_s = min(dict_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        kern_v = solve_all_delays_kernel(tree, agent, u, v, max_delay=max_delay)
        kern_s = min(kern_s, time.perf_counter() - t0)

    match = kern_v == dict_v and all(
        reference[(dv.delay, dv.delayed)]
        == (dv.met, dv.meeting_round, dv.certified_never)
        for dv in kern_v
        if (dv.delay, dv.delayed) in reference
    )
    kern_s = max(kern_s, 1e-9)
    return {
        "instance": f"pausing_walker(2) on colored line n={tree.n}",
        "max_delay": max_delay,
        "timing": f"best of {rounds}, warm tables (reference timed once)",
        "reference_seconds": round(ref_s, 4),
        "dict_solver_seconds": round(dict_s, 4),
        "kernel_seconds": round(kern_s, 4),
        "speedup_vs_dict": round(dict_s / kern_s, 2),
        "speedup_vs_reference": round(ref_s / kern_s, 1),
        "verdicts_match": match,
    }


def _grid(quick: bool):
    """The success-families trees (scenario seeds and relabelings), each
    with its lowered grid agent and all feasible start pairs."""
    from repro.agents.library import counting_program
    from repro.agents.lowering import lowered_for
    from repro.scenarios import get_scenario
    from repro.scenarios.spec import build_tree
    from repro.sim.batch import derive_seed
    from repro.trees.automorphism import perfectly_symmetrizable
    from repro.trees.labelings import random_relabel

    spec = get_scenario("success-families")
    for family, tree_specs in spec.param("families").items():
        if quick and family not in QUICK_FAMILIES:
            continue
        for idx, tree_spec in enumerate(tree_specs):
            seed = derive_seed(spec.seed, family, idx)
            tree = random_relabel(build_tree(tree_spec, seed), random.Random(seed))
            degrees = {tree.degree(x) for x in range(tree.n)}
            agent = lowered_for(counting_program(2), degrees)
            pairs = [
                (u, v)
                for u in range(tree.n)
                for v in range(u + 1, tree.n)
                if not perfectly_symmetrizable(tree, u, v)
            ]
            yield family, tree, agent, pairs


def _success_grid_speedup(quick: bool) -> dict:
    from repro.sim import kernel as kernel_mod
    from repro.sim import run_rendezvous, solve_all_delays
    from repro.sim.kernel import solve_delay_grid_kernel

    grids = list(_grid(quick))
    pairs = sum(len(g[3]) for g in grids)
    rounds = 2 if quick else 3

    # warm caches on both sides: the dict solver reuses its compiled
    # tables across pairs exactly as the executors do, the kernel its
    # successor tables; cold build cost is recorded under table_cache
    for _f, tree, agent, _ps in grids:
        kernel_mod.agent_table(agent, tree)
    dict_s = kern_s = float("inf")
    dict_rows = kern_rows = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        dict_rows = [
            solve_all_delays(tree, agent, u, v, max_delay=GRID_MAX_DELAY)
            for _f, tree, agent, ps in grids
            for u, v in ps
        ]
        dict_s = min(dict_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        kern_rows = [
            pair_rows
            for _f, tree, agent, ps in grids
            for pair_rows in solve_delay_grid_kernel(
                tree, agent, ps, max_delay=GRID_MAX_DELAY
            )
        ]
        kern_s = min(kern_s, time.perf_counter() - t0)

    match = kern_rows == dict_rows

    # Spot-check kernel verdicts against the reference engine: met rows
    # replay exactly to the recorded meeting round; never rows stay
    # unmet for a generous observational budget (certifying the
    # reference on lowered automata would need lasso-scale budgets).
    rng = random.Random(20260808)
    flat = [
        (tree, agent, u, v)
        for _f, tree, agent, ps in grids
        for u, v in ps
    ]
    checks = rng.sample(range(len(flat)), min(12 if quick else 48, len(flat)))
    ref_match = True
    for i in checks:
        tree, agent, u, v = flat[i]
        for dv in kern_rows[i]:
            budget = (dv.meeting_round + 1) if dv.met else 4_000
            out = run_rendezvous(
                tree, agent, u, v,
                delay=dv.delay, delayed=dv.delayed, max_rounds=budget,
            )
            if (out.met, out.meeting_round) != (
                dv.met, dv.meeting_round if dv.met else None
            ):
                ref_match = False

    return {
        "instance": f"success-families grid, lowered counting_program(2), "
                    f"theta 0..{GRID_MAX_DELAY}, all feasible pairs ({pairs} pairs)"
                    + (" [quick subset]" if quick else ""),
        "pairs": pairs,
        "verdict_rows": sum(len(rows) for rows in kern_rows),
        "timing": f"best of {rounds}, warm tables both sides",
        "dict_solver_seconds": round(dict_s, 4),
        "kernel_seconds": round(max(kern_s, 1e-9), 4),
        "speedup": round(dict_s / max(kern_s, 1e-9), 2),
        "verdicts_match": bool(match),
        "reference_spot_checks": sum(len(kern_rows[i]) for i in checks),
        "reference_match": bool(ref_match),
    }


def _table_cache(quick: bool) -> dict:
    """Cold vectorized successor-table build vs memmap reload."""
    import os

    from repro.sim import kernel as kernel_mod
    from repro.sim.kernel import agent_table

    work = [(tree, agent) for _f, tree, agent, _p in _grid(quick)]
    saved = os.environ.get(kernel_mod._ENV_CACHE)
    with tempfile.TemporaryDirectory(prefix="repro-kernel-bench-") as tmp:
        os.environ[kernel_mod._ENV_CACHE] = tmp
        try:
            kernel_mod._TABLE_CACHE.clear()
            t0 = time.perf_counter()
            entries = sum(agent_table(a, t).size for t, a in work)
            build_s = time.perf_counter() - t0

            kernel_mod._TABLE_CACHE.clear()
            t0 = time.perf_counter()
            for t, a in work:
                agent_table(a, t)
            load_s = time.perf_counter() - t0
        finally:
            kernel_mod._TABLE_CACHE.clear()
            if saved is None:
                os.environ.pop(kernel_mod._ENV_CACHE, None)
            else:
                os.environ[kernel_mod._ENV_CACHE] = saved
    return {
        "tables": len(work),
        "entries": int(entries),
        "build_seconds": round(build_s, 4),
        "load_seconds": round(max(load_s, 1e-9), 4),
    }


def _telemetry_overhead(quick: bool) -> dict:
    """The no-op overhead guarantee, measured: the same registry sweep
    with the default NullTelemetry vs an active Telemetry context.

    The disabled path costs one contextvar read plus one attribute check
    per instrumented seam; this subsection records both best-of timings
    and their ratio so a future PR that makes observation expensive (or
    makes *non*-observation expensive) trips the regression gate.
    """
    from repro.scenarios import Runner
    from repro.telemetry import Telemetry

    rounds = 3 if quick else 10
    runner = Runner(backend="auto")

    def best(active: bool) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            runner.run(
                "delays-line",
                telemetry=Telemetry() if active else None,
            )
            times.append(time.perf_counter() - t0)
        return min(times)

    disabled = best(False)
    enabled = best(True)
    return {
        "quick": quick,
        "workload": "delays-line (auto backend)",
        "rounds": rounds,
        "disabled_seconds": round(disabled, 4),
        "enabled_seconds": round(enabled, 4),
        "overhead_ratio": round(enabled / max(disabled, 1e-9), 3),
    }


def main(quick: bool = False, out_dir: Path | None = None) -> dict:
    section = {
        "quick": quick,
        "sweep_511": _sweep(quick),
        "success_families_grid": _success_grid_speedup(quick),
        "table_cache": _table_cache(quick),
    }
    # merge into the engine benchmark's trajectory file
    target = (out_dir or REPO_ROOT) / "BENCH_engine.json"
    payload = json.loads(target.read_text()) if target.exists() else {
        "bench": "engine-backends"
    }
    payload["kernel"] = section
    # top-level section (check_regression --require only sees top-level
    # keys): the observability layer's disabled-path cost, gated like
    # any other timing
    payload["telemetry_overhead"] = _telemetry_overhead(quick)
    record_json("BENCH_engine", payload, out_dir)
    return section


def test_kernel_speedup(benchmark):
    section = benchmark.pedantic(main, rounds=1, iterations=1)
    grid = section["success_families_grid"]
    assert grid["verdicts_match"], "kernel grid diverged from the dict solver"
    assert grid["reference_match"], "kernel grid diverged from the reference"
    assert grid["speedup"] >= 5, f"expected >= 5x, got {grid['speedup']}x"
    assert section["sweep_511"]["verdicts_match"]


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
